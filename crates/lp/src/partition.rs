//! POP-style partitioned transportation solve.
//!
//! Large placement instances are *granular*: thousands of small, largely
//! interchangeable allocations. POP (Narayanan et al., SOSP '21) exploits
//! that by splitting such a problem into `k` random subproblems, solving
//! them independently, and recombining. The union of subproblem optima is
//! feasible for the whole problem and empirically within a few percent of
//! its optimum, while the `k` solves shrink and can run in parallel.
//!
//! Three ingredients make that work on transportation instances whose
//! costs encode *distance* (not fungible resources):
//!
//! 1. **Random row deal.** Supply rows are dealt into `k` seeded random
//!    groups. Dealing the columns disjointly too (the naive `k²`-shrink
//!    split) was measured first and rejected: on fat-tree instances it
//!    denies each busy node `(k-1)/k` of its cheap nearby capacity and
//!    the objective gap lands at 35–65 % (see EXPERIMENTS.md).
//! 2. **Sliced columns with slack, pruned per group.** Every subproblem
//!    sees every column at `min(1, SLACK · share)` of its capacity,
//!    where `share` is the group's fraction of total supply — the slack
//!    lets a group claim more than its fair share of the columns it is
//!    actually close to. For speed, each group then keeps only its
//!    cheapest columns until their sliced capacity covers
//!    `PRUNE_COVER ×` its supply (plus each row's few cheapest columns
//!    as a reachability floor): the subproblem shrinks in *both*
//!    dimensions without giving up locality.
//! 3. **Eviction repair.** Slack means recombined columns can
//!    oversubscribe. A deterministic repair pass evicts the most
//!    expensive flows from each oversubscribed column and re-places the
//!    evicted supply with one small exact solve against residual
//!    capacity.
//!
//! A group carrying `share` of total supply keeps at least `share` of
//! total capacity, so every subproblem of a feasible instance is itself
//! feasible — the whole-problem MODI fallback only runs when the joint
//! problem was infeasible to begin with. The fallback stays wired in
//! regardless, so callers never lose answers to partitioning.
//!
//! [`solve_partitioned_with`] is the sequential entry point;
//! [`solve_partitioned_via`] accepts a caller-supplied batch solver so the
//! subproblems can run on an existing thread pool (dust-core drives it from
//! the `CostEngine` scoped-thread pool).

use crate::transportation::{
    Basis, SolveOptions, TransportProblem, TransportSolution, TransportStatus,
};
use dust_obs::ObsHandle;
use std::num::NonZeroUsize;

/// How much more than its fair share of any column a group may claim.
/// 1.0 disables slack (and the repair pass with it); higher values trade
/// repair work for a smaller objective gap.
const SLACK: f64 = 2.0;

/// Column pruning keeps a group's cheapest columns until their sliced
/// capacity covers this multiple of the group's supply.
const PRUNE_COVER: f64 = 2.0;

/// Reachability floor: every row keeps at least this many of its own
/// cheapest finite-cost columns, so pruning by group-wide cheapness can
/// never strand a row whose neighborhood differs from the group's.
const ROW_FLOOR: usize = 4;

/// Feasibility slop, matching the transportation solver's tolerance.
const TOL: f64 = 1e-9;

/// SplitMix64 step (Steele et al.) — the same generator dust-topology uses,
/// inlined here because dust-lp deliberately has no topology dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates shuffle of `0..len`, dealt round-robin into
/// `parts` groups: balanced sizes (they differ by at most one), random
/// membership.
fn deal(len: usize, parts: usize, rng: &mut u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = (splitmix64(rng) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let mut assignment = vec![0usize; len];
    for (pos, &i) in idx.iter().enumerate() {
        assignment[i] = pos % parts;
    }
    assignment
}

/// A seeded random split of an `m × n` transportation instance into
/// `parts` row groups; every subproblem prices a sliced, pruned view of
/// the columns.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    parts: usize,
    row_part: Vec<usize>,
}

impl PartitionPlan {
    /// Split `rows` supply rows into `min(parts, max(rows, 1))` seeded
    /// random groups — more groups than rows would only mint empty
    /// subproblems, so the effective count is capped.
    pub fn new(rows: usize, parts: NonZeroUsize, seed: u64) -> Self {
        let parts = parts.get().min(rows.max(1));
        let mut rng = seed;
        PartitionPlan { parts, row_part: deal(rows, parts, &mut rng) }
    }

    /// Effective number of subproblems (≤ the requested count).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Group assignment per row.
    pub fn row_part(&self) -> &[usize] {
        &self.row_part
    }

    /// Materialize subproblem `part` of `p`: its group's rows against the
    /// group's cheapest columns, each at `min(1, SLACK · share)` of its
    /// capacity.
    pub fn subproblem(&self, p: &TransportProblem, part: usize) -> SubProblem {
        let n = p.capacity.len();
        let rows: Vec<usize> = (0..p.supply.len()).filter(|&i| self.row_part[i] == part).collect();
        let group_supply: f64 = rows.iter().map(|&i| p.supply[i]).sum();
        let total_supply: f64 = p.supply.iter().sum();
        // a zero-supply group needs no columns at all; it solves
        // trivially to zero flow
        let share = if total_supply > 0.0 { group_supply / total_supply } else { 0.0 };
        let slice = (SLACK * share).min(1.0);
        let cols = if group_supply > 0.0 {
            prune_columns(p, &rows, slice, PRUNE_COVER * group_supply)
        } else {
            Vec::new()
        };
        let supply = rows.iter().map(|&i| p.supply[i]).collect();
        let capacity = cols.iter().map(|&j| p.capacity[j] * slice).collect();
        let mut cost = Vec::with_capacity(rows.len() * cols.len());
        for &i in &rows {
            for &j in &cols {
                cost.push(p.cost[i * n + j]);
            }
        }
        SubProblem {
            problem: TransportProblem { supply, capacity, cost },
            rows,
            cols,
            share,
            warm: None,
        }
    }

    /// All subproblems of `p`, in group order.
    pub fn subproblems(&self, p: &TransportProblem) -> Vec<SubProblem> {
        (0..self.parts).map(|part| self.subproblem(p, part)).collect()
    }
}

/// Keep the group's cheapest columns (by the cheapest row able to use
/// each) until their sliced capacity reaches `target`, plus each row's
/// [`ROW_FLOOR`] cheapest finite columns. Returns original column
/// indices, ascending.
fn prune_columns(p: &TransportProblem, rows: &[usize], slice: f64, target: f64) -> Vec<usize> {
    let n = p.capacity.len();
    let mut score = vec![f64::INFINITY; n];
    for &i in rows {
        for (j, s) in score.iter_mut().enumerate() {
            let c = p.cost[i * n + j];
            if c < *s {
                *s = c;
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| score[a].total_cmp(&score[b]).then(a.cmp(&b)));
    let mut keep = vec![false; n];
    let mut kept_cap = 0.0;
    for &j in &order {
        if kept_cap + TOL >= target {
            break;
        }
        keep[j] = true;
        kept_cap += p.capacity[j] * slice;
    }
    // reachability floor: a row whose own neighborhood is not the
    // group's must still see its cheapest columns
    for &i in rows {
        let mut best: Vec<usize> = Vec::with_capacity(ROW_FLOOR);
        for j in 0..n {
            let c = p.cost[i * n + j];
            if !c.is_finite() {
                continue;
            }
            if best.len() < ROW_FLOOR {
                best.push(j);
                best.sort_by(|&a, &b| {
                    p.cost[i * n + a].total_cmp(&p.cost[i * n + b]).then(a.cmp(&b))
                });
            } else if c < p.cost[i * n + best[ROW_FLOOR - 1]] {
                best[ROW_FLOOR - 1] = j;
                best.sort_by(|&a, &b| {
                    p.cost[i * n + a].total_cmp(&p.cost[i * n + b]).then(a.cmp(&b))
                });
            }
        }
        for j in best {
            keep[j] = true;
        }
    }
    (0..n).filter(|&j| keep[j]).collect()
}

/// One slice of a partitioned instance: the reduced problem plus the
/// original row/column indices its solution scatters back into.
#[derive(Debug, Clone)]
pub struct SubProblem {
    /// The reduced transportation instance.
    pub problem: TransportProblem,
    /// Original row index of each subproblem row.
    pub rows: Vec<usize>,
    /// Original column index of each kept (pruned-in) column.
    pub cols: Vec<usize>,
    /// This group's share of total supply (its capacity scaling factor,
    /// before slack).
    pub share: f64,
    /// Warm-start basis for this subproblem, carried over from the same
    /// group's previous-round solve (see [`PartitionWarm`]). Batch solvers
    /// should pass it through [`SolveOptions::warm_start`]; a basis that no
    /// longer fits the (re-pruned) subproblem is rejected cold by the
    /// solver itself.
    pub warm: Option<Basis>,
}

/// Per-group warm-start bases carried between successive partitioned
/// solves of drifting instances.
///
/// The deal is a pure function of `(rows, parts, seed)`, so as long as the
/// instance keeps its row count and the caller keeps the seed, group `g`
/// sees the same supply rows every round and its previous basis usually
/// still spans the new subproblem. Column pruning is cost-dependent, so a
/// group whose kept-column set shifted simply rejects its stale basis and
/// solves cold — correctness never depends on acceptance.
#[derive(Debug, Clone, Default)]
pub struct PartitionWarm {
    /// One basis slot per subproblem, in group order (a single slot when
    /// the whole-problem path ran). `None` slots solve cold.
    pub bases: Vec<Option<Basis>>,
}

impl PartitionWarm {
    /// True when no basis is carried at all.
    pub fn is_empty(&self) -> bool {
        self.bases.iter().all(Option::is_none)
    }
}

/// Result of a partitioned solve.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// Full-size solution (flows are `m × n` row-major, like a
    /// whole-problem solve). Row potentials come from each row's
    /// subproblem; column potentials are the share-weighted average of
    /// the subproblem duals, so treat them as approximate shadow prices.
    pub solution: TransportSolution,
    /// Effective subproblem count actually used (1 means the whole-problem
    /// path ran — either `parts == 1` or a single supply row).
    pub parts: usize,
    /// True when an infeasible subproblem forced the exact whole-problem
    /// fallback (with supply-proportional capacity shares this only
    /// happens when the joint problem is itself infeasible).
    pub fell_back: bool,
    /// Per-group bases from this round, ready to feed the next round's
    /// [`solve_partitioned_via_warm`] call as its `warm` argument.
    pub warm: PartitionWarm,
}

/// Partitioned solve with a caller-supplied batch solver: `solve_batch`
/// receives every subproblem and returns one solution per subproblem, in
/// order. This is the hook dust-core uses to fan the solves out on the
/// `CostEngine` scoped-thread pool; the recombination and repair logic
/// stay here.
///
/// `parts == 1` (or an instance too small to split) delegates to the
/// whole-problem solver and is bit-identical to [`TransportProblem::solve_with`].
/// Any infeasible subproblem triggers the exact whole-problem fallback.
pub fn solve_partitioned_via<F>(
    p: &TransportProblem,
    parts: NonZeroUsize,
    seed: u64,
    obs: &ObsHandle,
    solve_batch: F,
) -> PartitionOutcome
where
    F: FnOnce(&[SubProblem]) -> Vec<TransportSolution>,
{
    solve_partitioned_via_warm(p, parts, seed, obs, None, solve_batch)
}

/// [`solve_partitioned_via`] with per-group warm-start bases from a
/// previous round. Each subproblem's slot from `warm` (matched by group
/// order; ignored wholesale if the group count changed) is attached as
/// [`SubProblem::warm`] for the batch solver to feed through
/// [`SolveOptions::warm_start`]. The returned [`PartitionOutcome::warm`]
/// carries this round's bases for the next call.
///
/// Subproblem solves run under the batch solver's (typically disabled)
/// obs handle, so the warm/cold pivot split (`lp.warm_solves`,
/// `lp.warm_pivots`, `lp.warm_rejects`, `lp.cold_pivots`,
/// `lp.pivots_saved`) is aggregated here from the returned solutions.
pub fn solve_partitioned_via_warm<F>(
    p: &TransportProblem,
    parts: NonZeroUsize,
    seed: u64,
    obs: &ObsHandle,
    warm: Option<&PartitionWarm>,
    solve_batch: F,
) -> PartitionOutcome
where
    F: FnOnce(&[SubProblem]) -> Vec<TransportSolution>,
{
    let m = p.supply.len();
    let n = p.capacity.len();
    let plan = PartitionPlan::new(m, parts, seed);
    if plan.parts() <= 1 {
        // whole-problem path: one basis slot, recorded directly against
        // the caller's obs by the solver itself
        let warm_start =
            warm.and_then(|w| if w.bases.len() == 1 { w.bases[0].clone() } else { None });
        let solution = p.solve_with_options(obs, &SolveOptions { warm_start });
        let bases = vec![solution.basis.clone()];
        return PartitionOutcome {
            solution,
            parts: 1,
            fell_back: false,
            warm: PartitionWarm { bases },
        };
    }
    let mut subs = {
        let _prof = obs.prof_scope("lp.partition.deal");
        plan.subproblems(p)
    };
    if let Some(w) = warm {
        if w.bases.len() == subs.len() {
            for (sub, b) in subs.iter_mut().zip(&w.bases) {
                sub.warm = b.clone();
            }
        }
    }
    let solutions = {
        let _prof = obs.prof_scope("lp.partition.solve");
        solve_batch(&subs)
    };
    assert_eq!(solutions.len(), subs.len(), "batch solver must answer every subproblem");

    if obs.is_enabled() {
        obs.counter_inc("lp.partition.solves");
        obs.counter_add("lp.partition.subproblems", subs.len() as u64);
        for (sub, sol) in subs.iter().zip(&solutions) {
            if sol.warm_used {
                obs.counter_inc("lp.warm_solves");
                obs.counter_add("lp.warm_pivots", sol.iterations as u64);
                let skipped = sol.basis.as_ref().map(|b| b.len() as u64).unwrap_or(0);
                obs.counter_add("lp.pivots_saved", skipped);
            } else {
                if sub.warm.is_some() {
                    obs.counter_inc("lp.warm_rejects");
                }
                obs.counter_add("lp.cold_pivots", sol.iterations as u64);
            }
        }
    }
    let fallback = |fell_back: bool| {
        let solution = p.solve_with(obs);
        let bases = vec![solution.basis.clone()];
        PartitionOutcome { solution, parts: plan.parts(), fell_back, warm: PartitionWarm { bases } }
    };
    if solutions.iter().any(|s| s.status == TransportStatus::Infeasible) {
        // Groups keep at least their fair share of capacity, so reaching
        // this means the joint problem is infeasible (or a caller-supplied
        // solver misbehaved): the exact whole-problem solve is the
        // authority either way.
        if obs.is_enabled() {
            obs.counter_inc("lp.partition.fallbacks");
        }
        return fallback(true);
    }

    let mut flow = vec![0.0; m * n];
    let mut row_potentials = vec![0.0; m];
    let mut col_potentials = vec![0.0; n];
    let mut iterations = 0;
    for (sub, sol) in subs.iter().zip(&solutions) {
        iterations += sol.iterations;
        let w = sub.cols.len();
        for (si, &i) in sub.rows.iter().enumerate() {
            if let Some(&u) = sol.row_potentials.get(si) {
                row_potentials[i] = u;
            }
            for (sj, &j) in sub.cols.iter().enumerate() {
                flow[i * n + j] = sol.flow[si * w + sj];
            }
        }
        for (sj, &j) in sub.cols.iter().enumerate() {
            if let Some(&v) = sol.col_potentials.get(sj) {
                col_potentials[j] += sub.share * v;
            }
        }
    }

    // Repair: slack lets groups collectively oversubscribe a column.
    // Evict the most expensive flows from each oversubscribed column,
    // then re-place the evicted supply with one small exact solve
    // against residual capacity.
    let prof_repair = obs.prof_scope("lp.partition.repair");
    let mut absorbed = vec![0.0; n];
    for i in 0..m {
        for (j, a) in absorbed.iter_mut().enumerate() {
            *a += flow[i * n + j];
        }
    }
    let mut evicted = vec![0.0; m];
    let mut evicted_total = 0.0;
    for j in 0..n {
        let mut excess = absorbed[j] - p.capacity[j];
        if excess <= TOL {
            continue;
        }
        // most expensive users of this column go first; ties break on
        // the row index so the repair is deterministic
        let mut users: Vec<usize> = (0..m).filter(|&i| flow[i * n + j] > 0.0).collect();
        users.sort_by(|&a, &b| p.cost[b * n + j].total_cmp(&p.cost[a * n + j]).then(a.cmp(&b)));
        for i in users {
            if excess <= TOL {
                break;
            }
            let take = flow[i * n + j].min(excess);
            flow[i * n + j] -= take;
            evicted[i] += take;
            evicted_total += take;
            excess -= take;
        }
        absorbed[j] = p.capacity[j];
    }
    if evicted_total > TOL {
        let rows: Vec<usize> = (0..m).filter(|&i| evicted[i] > TOL).collect();
        let cols: Vec<usize> = (0..n).filter(|&j| p.capacity[j] - absorbed[j] > TOL).collect();
        let supply: Vec<f64> = rows.iter().map(|&i| evicted[i]).collect();
        let capacity: Vec<f64> = cols.iter().map(|&j| p.capacity[j] - absorbed[j]).collect();
        let mut cost = Vec::with_capacity(rows.len() * cols.len());
        for &i in &rows {
            for &j in &cols {
                cost.push(p.cost[i * n + j]);
            }
        }
        let residual = TransportProblem { supply, capacity, cost };
        let sol = residual.solve();
        if sol.status != TransportStatus::Optimal {
            // numerically starved residual (whole problem right at the
            // feasibility boundary): the exact solve is the safe answer
            if obs.is_enabled() {
                obs.counter_inc("lp.partition.fallbacks");
            }
            return fallback(true);
        }
        iterations += sol.iterations;
        if obs.is_enabled() {
            obs.counter_inc("lp.partition.repairs");
            obs.observe("lp.partition.evicted", evicted_total);
        }
        let w = cols.len();
        for (si, &i) in rows.iter().enumerate() {
            for (sj, &j) in cols.iter().enumerate() {
                flow[i * n + j] += sol.flow[si * w + sj];
            }
        }
    }
    drop(prof_repair);

    // the recombined + repaired flows are the solution: price them directly
    let mut objective = 0.0;
    for (x, c) in flow.iter().zip(&p.cost) {
        if *x > 0.0 {
            objective += x * c;
        }
    }
    if obs.is_enabled() {
        obs.counter_add("lp.partition.pivots", iterations as u64);
        obs.observe("lp.partition.pivots", iterations as f64);
    }
    PartitionOutcome {
        solution: TransportSolution {
            status: TransportStatus::Optimal,
            flow,
            objective,
            iterations,
            row_potentials,
            col_potentials,
            basis: None,
            warm_used: solutions.iter().any(|s| s.warm_used),
        },
        parts: plan.parts(),
        fell_back: false,
        warm: PartitionWarm { bases: solutions.iter().map(|s| s.basis.clone()).collect() },
    }
}

/// Sequential partitioned solve: subproblems run one after another on the
/// calling thread. See [`solve_partitioned_via`] for the parallel hook and
/// [`solve_partitioned_via_warm`] for basis reuse across rounds.
pub fn solve_partitioned_with(
    p: &TransportProblem,
    parts: NonZeroUsize,
    seed: u64,
    obs: &ObsHandle,
) -> PartitionOutcome {
    solve_partitioned_via(p, parts, seed, obs, solve_subs_sequential)
}

/// The default batch solver: solve each subproblem on the calling thread,
/// honoring any attached warm basis. Exposed so warm-aware callers (and
/// tests) can reuse it with [`solve_partitioned_via_warm`].
pub fn solve_subs_sequential(subs: &[SubProblem]) -> Vec<TransportSolution> {
    let obs = ObsHandle::disabled();
    subs.iter()
        .map(|s| s.problem.solve_with_options(&obs, &SolveOptions { warm_start: s.warm.clone() }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nz(k: usize) -> NonZeroUsize {
        NonZeroUsize::new(k).unwrap()
    }

    /// A granular instance: `m` unit supplies, `n` sinks with ample
    /// capacity, costs varying smoothly so partition quality stays high.
    fn granular(m: usize, n: usize) -> TransportProblem {
        let supply = vec![1.0; m];
        let capacity = vec![2.0 * m as f64 / n as f64 + 1.0; n];
        let cost = (0..m * n).map(|x| 1.0 + ((x * 7919) % 97) as f64 / 97.0).collect();
        TransportProblem::new(supply, capacity, cost)
    }

    fn objective_of(p: &TransportProblem, flow: &[f64]) -> f64 {
        flow.iter().zip(&p.cost).filter(|(x, _)| **x > 0.0).map(|(x, c)| x * c).sum()
    }

    #[test]
    fn k1_is_bit_identical_to_whole_problem() {
        let p = granular(12, 8);
        let whole = p.solve();
        let part = solve_partitioned_with(&p, nz(1), 99, &ObsHandle::disabled());
        assert_eq!(part.parts, 1);
        assert!(!part.fell_back);
        assert_eq!(part.solution.flow, whole.flow, "k=1 must take the exact path verbatim");
        assert_eq!(part.solution.objective.to_bits(), whole.objective.to_bits());
        assert_eq!(part.solution.col_potentials, whole.col_potentials);
    }

    #[test]
    fn partitioned_flow_is_feasible_and_near_optimal() {
        let p = granular(40, 24);
        let whole = p.solve();
        for k in [2, 4, 8] {
            let part = solve_partitioned_with(&p, nz(k), 7, &ObsHandle::disabled());
            assert_eq!(part.solution.status, TransportStatus::Optimal, "k={k}");
            // every row ships exactly its supply
            for i in 0..p.supply.len() {
                let shipped: f64 = part.solution.flow
                    [i * p.capacity.len()..(i + 1) * p.capacity.len()]
                    .iter()
                    .sum();
                assert!((shipped - p.supply[i]).abs() < 1e-6, "row {i} k={k}");
            }
            // no column overflows its *original* capacity once the
            // per-group slices recombine and repair runs
            for j in 0..p.capacity.len() {
                let absorbed: f64 =
                    (0..p.supply.len()).map(|i| part.solution.flow[i * p.capacity.len() + j]).sum();
                assert!(absorbed <= p.capacity[j] + 1e-6, "col {j} k={k}");
            }
            // objective is consistent with the flows, ≥ the true optimum,
            // and close to it (slicing with slack + repair keeps every
            // cheap column usable by every group)
            let obj = objective_of(&p, &part.solution.flow);
            assert!((obj - part.solution.objective).abs() < 1e-6);
            assert!(part.solution.objective >= whole.objective - 1e-9, "k={k}");
            assert!(
                part.solution.objective <= whole.objective * 1.10 + 1e-9,
                "k={k}: gap {:.1}% too large",
                (part.solution.objective / whole.objective - 1.0) * 100.0
            );
        }
    }

    #[test]
    fn split_is_deterministic_in_seed() {
        let p = granular(30, 16);
        let a = solve_partitioned_with(&p, nz(4), 5, &ObsHandle::disabled());
        let b = solve_partitioned_with(&p, nz(4), 5, &ObsHandle::disabled());
        assert_eq!(a.solution.flow, b.solution.flow);
        let c = solve_partitioned_with(&p, nz(4), 6, &ObsHandle::disabled());
        // different seed, different split (objective may coincide; the
        // plan must not)
        assert_ne!(
            PartitionPlan::new(30, nz(4), 5).row_part(),
            PartitionPlan::new(30, nz(4), 6).row_part()
        );
        let _ = c;
    }

    #[test]
    fn k_exceeding_rows_is_capped() {
        // 2 rows split 6 ways: only 2 non-empty groups are possible, so
        // the plan caps the effective count instead of minting empty
        // subproblems.
        let p = granular(2, 12);
        let plan = PartitionPlan::new(2, nz(6), 3);
        assert_eq!(plan.parts(), 2);
        assert!(plan.subproblems(&p).iter().all(|s| !s.rows.is_empty()));
        let part = solve_partitioned_with(&p, nz(6), 3, &ObsHandle::disabled());
        assert_eq!(part.parts, 2);
        assert_eq!(part.solution.status, TransportStatus::Optimal);
        let shipped: f64 = part.solution.flow.iter().sum();
        assert!((shipped - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_supply_rows_make_effectively_empty_subproblems() {
        // Rows 3 and 7 carry no supply: whichever groups they land in may
        // end up all-zero — an effectively empty subproblem (no columns
        // kept at all) that must solve trivially to zero flow.
        let mut p = granular(10, 6);
        p.supply[3] = 0.0;
        p.supply[7] = 0.0;
        let part = solve_partitioned_with(&p, nz(3), 11, &ObsHandle::disabled());
        assert_eq!(part.solution.status, TransportStatus::Optimal);
        let n = p.capacity.len();
        for i in [3usize, 7] {
            assert!(
                part.solution.flow[i * n..(i + 1) * n].iter().all(|&x| x == 0.0),
                "zero-supply row {i} must come back with zero flow"
            );
        }
        assert_eq!(part.solution.flow.len(), p.supply.len() * n);
    }

    #[test]
    fn all_zero_supply_solves_to_zero_flow() {
        let mut p = granular(6, 4);
        p.supply.iter_mut().for_each(|s| *s = 0.0);
        let part = solve_partitioned_with(&p, nz(3), 2, &ObsHandle::disabled());
        assert_eq!(part.solution.status, TransportStatus::Optimal);
        assert!(part.solution.flow.iter().all(|&x| x == 0.0));
        assert_eq!(part.solution.objective, 0.0);
    }

    #[test]
    fn feasible_instances_never_fall_back() {
        // Groups keep at least their supply-proportional share of every
        // column, so feasibility is preserved for every seed — the
        // fat-source instance that strands a naive disjoint split stays
        // solvable here.
        let supply = vec![10.0, 0.5, 0.5, 0.5];
        let capacity = vec![10.5, 0.6, 0.6, 0.6];
        let cost = vec![1.0; 16];
        let p = TransportProblem::new(supply, capacity, cost);
        let whole = p.solve();
        for seed in 0..16 {
            let part = solve_partitioned_with(&p, nz(4), seed, &ObsHandle::disabled());
            assert!(!part.fell_back, "seed {seed}: feasible instance must not fall back");
            assert_eq!(part.solution.status, TransportStatus::Optimal, "seed {seed}");
            assert!(
                (objective_of(&p, &part.solution.flow) - whole.objective).abs() < 1e-6,
                "seed {seed}: uniform costs leave no room for a gap"
            );
        }
    }

    #[test]
    fn infeasible_instance_falls_back_to_the_exact_answer() {
        // More supply than capacity: every subproblem inherits the
        // imbalance, the fallback fires, and the exact verdict surfaces.
        let p = TransportProblem::new(vec![5.0, 5.0], vec![1.0, 1.0], vec![1.0; 4]);
        let obs = ObsHandle::recording(0);
        let part = solve_partitioned_with(&p, nz(2), 3, &obs);
        assert!(part.fell_back);
        assert_eq!(part.solution.status, TransportStatus::Infeasible);
        assert_eq!(obs.counter("lp.partition.fallbacks"), 1);
    }

    #[test]
    fn repair_respects_capacity_under_contention() {
        // One very cheap sink every row wants: slack lets several groups
        // pile onto it, and the repair pass must pull the recombined
        // usage back under its true capacity.
        let m = 12;
        let n = 6;
        let supply = vec![1.0; m];
        let mut capacity = vec![4.0; n];
        capacity[0] = 3.0;
        let mut cost = vec![10.0; m * n];
        for i in 0..m {
            cost[i * n] = 1.0; // column 0 is everyone's favorite
        }
        let p = TransportProblem::new(supply, capacity, cost);
        let part = solve_partitioned_with(&p, nz(4), 9, &ObsHandle::disabled());
        assert_eq!(part.solution.status, TransportStatus::Optimal);
        let absorbed: f64 = (0..m).map(|i| part.solution.flow[i * n]).sum();
        assert!(absorbed <= 3.0 + 1e-6, "column 0 oversubscribed: {absorbed}");
        let shipped: f64 = part.solution.flow.iter().sum();
        assert!((shipped - m as f64).abs() < 1e-6, "supply conserved through repair");
        // the optimum fills the cheap sink exactly
        let whole = p.solve();
        assert!((part.solution.objective - whole.objective).abs() / whole.objective < 0.25);
    }

    #[test]
    fn obs_counters_record_partition_work() {
        let obs = ObsHandle::recording(0);
        let p = granular(24, 12);
        let out = solve_partitioned_with(&p, nz(4), 2, &obs);
        assert!(!out.fell_back);
        assert_eq!(obs.counter("lp.partition.solves"), 1);
        assert_eq!(obs.counter("lp.partition.subproblems"), 4);
        assert_eq!(obs.counter("lp.partition.fallbacks"), 0);
    }

    #[test]
    fn via_hook_sees_every_subproblem() {
        let p = granular(20, 10);
        let mut seen = 0;
        let out = solve_partitioned_via(&p, nz(5), 4, &ObsHandle::disabled(), |subs| {
            seen = subs.len();
            subs.iter().map(|s| s.problem.solve()).collect()
        });
        assert_eq!(seen, 5);
        assert_eq!(out.parts, 5);
    }

    #[test]
    fn warm_round_trip_matches_cold_and_saves_pivots() {
        let p = granular(40, 24);
        let first = solve_partitioned_with(&p, nz(4), 7, &ObsHandle::disabled());
        assert_eq!(first.warm.bases.len(), 4, "one basis slot per group");
        assert!(!first.warm.is_empty());

        // drift the instance a little, then solve warm and cold
        let mut q = p.clone();
        for (i, s) in q.supply.iter_mut().enumerate() {
            *s += (i % 3) as f64 * 0.01;
        }
        let obs = ObsHandle::recording(0);
        let warm = solve_partitioned_via_warm(
            &q,
            nz(4),
            7,
            &obs,
            Some(&first.warm),
            solve_subs_sequential,
        );
        let cold = solve_partitioned_with(&q, nz(4), 7, &ObsHandle::disabled());
        assert_eq!(warm.solution.status, TransportStatus::Optimal);
        // same seed → same deal → same subproblems: warm and cold land on
        // the same optimum of every subproblem, so the recombined
        // objectives agree exactly up to float summation order
        assert!(
            (warm.solution.objective - cold.solution.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.solution.objective,
            cold.solution.objective
        );
        assert!(obs.counter("lp.warm_solves") > 0, "at least one group accepted its basis");
        assert!(obs.counter("lp.pivots_saved") > 0);
    }

    #[test]
    fn warm_with_wrong_group_count_is_ignored() {
        let p = granular(30, 16);
        let first = solve_partitioned_with(&p, nz(4), 5, &ObsHandle::disabled());
        let obs = ObsHandle::recording(0);
        // re-solve with k=2: the 4-slot warm set cannot line up and must
        // be dropped wholesale, not half-applied
        let out = solve_partitioned_via_warm(
            &p,
            nz(2),
            5,
            &obs,
            Some(&first.warm),
            solve_subs_sequential,
        );
        assert_eq!(out.parts, 2);
        assert_eq!(out.solution.status, TransportStatus::Optimal);
        assert_eq!(obs.counter("lp.warm_solves"), 0);
        assert_eq!(obs.counter("lp.warm_rejects"), 0, "never offered, so never rejected");
        let cold = solve_partitioned_with(&p, nz(2), 5, &ObsHandle::disabled());
        assert_eq!(out.solution.flow, cold.solution.flow);
    }

    #[test]
    fn k1_warm_path_delegates_to_whole_problem_solver() {
        let p = granular(12, 8);
        let first = solve_partitioned_with(&p, nz(1), 9, &ObsHandle::disabled());
        assert_eq!(first.warm.bases.len(), 1);
        assert!(first.warm.bases[0].is_some());
        let obs = ObsHandle::recording(0);
        let again = solve_partitioned_via_warm(
            &p,
            nz(1),
            9,
            &obs,
            Some(&first.warm),
            solve_subs_sequential,
        );
        assert!(again.solution.warm_used);
        assert_eq!(again.solution.iterations, 0, "optimal basis re-solves pivot-free");
        assert_eq!(again.solution.objective.to_bits(), first.solution.objective.to_bits());
        // counters recorded once by the whole-problem solver, not doubled
        // by the partition layer
        assert_eq!(obs.counter("lp.warm_solves"), 1);
    }
}
