//! Two-phase dense primal simplex.
//!
//! This is the workhorse that replaces the Gurobi toolkit the paper used
//! (§V). The solver accepts any [`Problem`] built by the modeling layer:
//!
//! 1. **Standard-form conversion** — variables are shifted to have zero
//!    lower bounds (free variables are split into positive/negative parts,
//!    finite upper bounds become explicit rows), rows are normalized to a
//!    non-negative right-hand side, and slack/surplus/artificial columns
//!    are appended.
//! 2. **Phase 1** minimizes the sum of artificial variables; a positive
//!    optimum proves infeasibility.
//! 3. **Phase 2** optimizes the real objective from the feasible basis.
//!
//! Pivoting uses Dantzig pricing with an automatic switch to Bland's rule
//! after a stall, which guarantees termination.

use crate::problem::{Cmp, Problem, Sense};

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
}

/// Solver result: status, point, objective, and iteration count.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Why the solver stopped.
    pub status: Status,
    /// Values of the *original* problem variables (empty unless
    /// [`Status::Optimal`]).
    pub x: Vec<f64>,
    /// Objective value in the original problem's sense (NaN unless optimal).
    pub objective: f64,
    /// Total simplex pivots across both phases.
    pub iterations: usize,
    /// Pivots spent in Phase 1 (driving out artificials).
    pub phase1_iterations: usize,
    /// Pivots spent in Phase 2 (optimizing the real objective).
    pub phase2_iterations: usize,
}

impl Solution {
    /// True when an optimal point was found.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}

/// Tunable solver knobs.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Numerical tolerance for feasibility and pricing.
    pub tol: f64,
    /// Hard cap on pivots per phase.
    pub max_iterations: usize,
    /// Pivot count after which Dantzig pricing yields to Bland's rule.
    pub bland_after: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { tol: 1e-9, max_iterations: 200_000, bland_after: 5_000 }
    }
}

/// Solve with default [`Options`] and no observability.
pub fn solve(p: &Problem) -> Solution {
    solve_with(p, Options::default(), &dust_obs::ObsHandle::disabled())
}

/// How each original variable maps into the standard-form column space.
enum VarMap {
    /// `x = lower + col`
    Shifted { col: usize, lower: f64 },
    /// `x = plus - minus` (free variable)
    Split { plus: usize, minus: usize },
}

/// Dense simplex tableau with an explicit basis.
struct Tableau {
    /// `rows × (cols + 1)`; the last column is the RHS.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// `basis[r]` = column basic in row `r`.
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * (self.cols + 1) + c] = v;
    }

    /// Gauss-Jordan pivot on (row, col).
    fn pivot(&mut self, pr: usize, pc: usize) {
        let w = self.cols + 1;
        let piv = self.at(pr, pc);
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        let inv = 1.0 / piv;
        for c in 0..w {
            self.a[pr * w + c] *= inv;
        }
        // exact unit pivot column
        self.set(pr, pc, 1.0);
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let f = self.at(r, pc);
            if f == 0.0 {
                continue;
            }
            for c in 0..w {
                let upd = self.a[r * w + c] - f * self.a[pr * w + c];
                self.a[r * w + c] = upd;
            }
            self.set(r, pc, 0.0);
        }
        self.basis[pr] = pc;
    }
}

/// Run primal simplex on `tab` minimizing `costs` over `allowed` columns.
/// Returns `(status, objective, iterations)`. `tab` must start from a basic
/// feasible solution (identity-like basis with non-negative RHS).
fn run_simplex(
    tab: &mut Tableau,
    costs: &[f64],
    allowed: &[bool],
    opts: Options,
) -> (Status, f64, usize) {
    let w = tab.cols + 1;
    // Reduced-cost row z[c] = costs[c] - c_B^T B^{-1} A_c, maintained densely.
    let mut z = vec![0.0; w];
    z[..tab.cols].copy_from_slice(costs);
    // subtract contributions of the initial basis
    for r in 0..tab.rows {
        let cb = costs[tab.basis[r]];
        if cb != 0.0 {
            for (c, zc) in z.iter_mut().enumerate() {
                *zc -= cb * tab.a[r * w + c];
            }
        }
    }

    let mut iters = 0usize;
    loop {
        if iters >= opts.max_iterations {
            return (Status::IterationLimit, f64::NAN, iters);
        }
        // Pricing: entering column with negative reduced cost.
        let use_bland = iters >= opts.bland_after;
        let mut enter: Option<usize> = None;
        let mut best = -opts.tol;
        for c in 0..tab.cols {
            if !allowed[c] {
                continue;
            }
            let rc = z[c];
            if use_bland {
                if rc < -opts.tol {
                    enter = Some(c);
                    break;
                }
            } else if rc < best {
                best = rc;
                enter = Some(c);
            }
        }
        let Some(pc) = enter else {
            // optimal: objective = -z[rhs]
            return (Status::Optimal, -z[tab.cols], iters);
        };

        // Ratio test: leaving row minimizing rhs / a[r][pc] over a > tol.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..tab.rows {
            let a = tab.at(r, pc);
            if a > opts.tol {
                let ratio = tab.rhs(r) / a;
                let better = ratio < best_ratio - opts.tol
                    || (ratio < best_ratio + opts.tol
                        && leave.is_some_and(|lr| tab.basis[r] < tab.basis[lr]));
                if better {
                    best_ratio = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(pr) = leave else {
            return (Status::Unbounded, f64::NAN, iters);
        };

        tab.pivot(pr, pc);
        // update reduced-cost row with the pivoted row
        let f = z[pc];
        if f != 0.0 {
            for (c, zc) in z.iter_mut().enumerate() {
                *zc -= f * tab.a[pr * w + c];
            }
            z[pc] = 0.0;
        }
        iters += 1;
    }
}

/// The single solver entry point: solve `p` with explicit options and
/// record solver metrics into `obs` — pivot counters and histograms
/// split by phase, plus one `SimplexSolve` trace event. A disabled
/// handle skips all recording, preserving the untraced path exactly.
pub fn solve_with(p: &Problem, opts: Options, obs: &dust_obs::ObsHandle) -> Solution {
    let _prof = obs.prof_scope("lp.simplex.solve");
    let s = solve_inner(p, opts);
    if obs.is_enabled() {
        obs.counter_inc("lp.simplex.solves");
        obs.counter_add("lp.simplex.pivots", s.iterations as u64);
        obs.counter_add("lp.simplex.phase1_iterations", s.phase1_iterations as u64);
        obs.counter_add("lp.simplex.phase2_iterations", s.phase2_iterations as u64);
        obs.observe("lp.simplex.pivots", s.iterations as f64);
        obs.trace(dust_obs::TraceEvent::SimplexSolve {
            pivots: s.iterations as u64,
            phase1: s.phase1_iterations as u64,
            phase2: s.phase2_iterations as u64,
        });
    }
    s
}

pub(crate) fn solve_inner(p: &Problem, opts: Options) -> Solution {
    // ---- 1. Standard-form conversion -------------------------------------
    let minimize = p.sense() == Sense::Minimize;
    let mut maps: Vec<VarMap> = Vec::with_capacity(p.num_vars());
    let mut costs: Vec<f64> = Vec::new(); // structural columns only, minimize sense
                                          // rows as (terms over columns, cmp, rhs)
    type RowSpec = (Vec<(usize, f64)>, Cmp, f64);
    let mut rows: Vec<RowSpec> = Vec::new();

    for i in 0..p.num_vars() {
        let def = *p.var_def(crate::problem::Var(i));
        let sign = if minimize { 1.0 } else { -1.0 };
        if def.lower.is_finite() {
            let col = costs.len();
            costs.push(sign * def.cost);
            maps.push(VarMap::Shifted { col, lower: def.lower });
            if def.upper.is_finite() {
                // col <= upper - lower
                rows.push((vec![(col, 1.0)], Cmp::Le, def.upper - def.lower));
            }
        } else {
            // free (or upper-bounded-only) variable: x = plus - minus
            let plus = costs.len();
            costs.push(sign * def.cost);
            let minus = costs.len();
            costs.push(-sign * def.cost);
            maps.push(VarMap::Split { plus, minus });
            if def.upper.is_finite() {
                rows.push((vec![(plus, 1.0), (minus, -1.0)], Cmp::Le, def.upper));
            }
        }
    }

    for c in &p.constraints {
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
        let mut rhs = c.rhs;
        for &(v, coef) in &c.terms {
            match &maps[v.0] {
                VarMap::Shifted { col, lower } => {
                    terms.push((*col, coef));
                    rhs -= coef * lower;
                }
                VarMap::Split { plus, minus } => {
                    terms.push((*plus, coef));
                    terms.push((*minus, -coef));
                }
            }
        }
        rows.push((terms, c.cmp, rhs));
    }

    let n_struct = costs.len();
    let m = rows.len();

    // ---- 2. Append slack/artificial columns, build the tableau -----------
    // Column layout: [structural | slacks/surplus | artificials]
    let mut n_slack = 0usize;
    for (_, cmp, _) in &rows {
        if *cmp != Cmp::Eq {
            n_slack += 1;
        }
    }
    let n_total_guess = n_struct + n_slack + m;
    let mut tab = Tableau {
        a: vec![0.0; m * (n_total_guess + 1)],
        rows: m,
        cols: n_total_guess,
        basis: vec![usize::MAX; m],
    };
    let w = n_total_guess + 1;

    let mut slack_cursor = n_struct;
    let mut art_cursor = n_struct + n_slack;
    let mut artificials: Vec<usize> = Vec::new();

    for (r, (terms, cmp, rhs)) in rows.iter().enumerate() {
        // normalize rhs >= 0
        let flip = *rhs < 0.0;
        let s = if flip { -1.0 } else { 1.0 };
        for &(c, coef) in terms {
            tab.a[r * w + c] += s * coef;
        }
        tab.a[r * w + n_total_guess] = s * rhs;
        let eff_cmp = match (cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match eff_cmp {
            Cmp::Le => {
                tab.a[r * w + slack_cursor] = 1.0;
                tab.basis[r] = slack_cursor;
                slack_cursor += 1;
            }
            Cmp::Ge => {
                tab.a[r * w + slack_cursor] = -1.0; // surplus
                slack_cursor += 1;
                tab.a[r * w + art_cursor] = 1.0;
                tab.basis[r] = art_cursor;
                artificials.push(art_cursor);
                art_cursor += 1;
            }
            Cmp::Eq => {
                tab.a[r * w + art_cursor] = 1.0;
                tab.basis[r] = art_cursor;
                artificials.push(art_cursor);
                art_cursor += 1;
            }
        }
    }

    let mut total_iters = 0usize;
    let mut phase1_iters = 0usize;

    // ---- 3. Phase 1 -------------------------------------------------------
    if !artificials.is_empty() {
        let mut p1_costs = vec![0.0; n_total_guess];
        for &a in &artificials {
            p1_costs[a] = 1.0;
        }
        let allowed = vec![true; n_total_guess];
        let (st, obj, it) = run_simplex(&mut tab, &p1_costs, &allowed, opts);
        total_iters += it;
        phase1_iters = it;
        match st {
            Status::Optimal => {
                if obj > 1e-6 {
                    return Solution {
                        status: Status::Infeasible,
                        x: Vec::new(),
                        objective: f64::NAN,
                        iterations: total_iters,
                        phase1_iterations: phase1_iters,
                        phase2_iterations: 0,
                    };
                }
            }
            Status::IterationLimit => {
                return Solution {
                    status: Status::IterationLimit,
                    x: Vec::new(),
                    objective: f64::NAN,
                    iterations: total_iters,
                    phase1_iterations: phase1_iters,
                    phase2_iterations: 0,
                };
            }
            // Phase 1 objective is bounded below by 0, so Unbounded cannot
            // occur; treat defensively.
            _ => unreachable!("phase-1 objective cannot be unbounded"),
        }
        // Drive any artificial still basic (at zero level) out of the basis.
        let is_artificial = |c: usize| c >= n_struct + n_slack;
        for r in 0..m {
            if is_artificial(tab.basis[r]) {
                // find a non-artificial column with nonzero entry to pivot in
                let mut pivoted = false;
                for c in 0..n_struct + n_slack {
                    if tab.at(r, c).abs() > opts.tol {
                        tab.pivot(r, c);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // redundant row: artificial stays basic at zero; it will
                    // simply never leave and its column is disallowed below.
                }
            }
        }
    }

    // ---- 4. Phase 2 -------------------------------------------------------
    let mut p2_costs = vec![0.0; n_total_guess];
    p2_costs[..n_struct].copy_from_slice(&costs);
    let mut allowed = vec![true; n_total_guess];
    allowed[n_struct + n_slack..].fill(false); // artificials may never re-enter
    let (st, obj, it) = run_simplex(&mut tab, &p2_costs, &allowed, opts);
    total_iters += it;
    let phase2_iters = it;
    match st {
        Status::Optimal => {}
        other => {
            return Solution {
                status: other,
                x: Vec::new(),
                objective: f64::NAN,
                iterations: total_iters,
                phase1_iterations: phase1_iters,
                phase2_iterations: phase2_iters,
            };
        }
    }

    // ---- 5. Recover original variable values ------------------------------
    let mut col_val = vec![0.0; n_total_guess];
    for r in 0..m {
        let b = tab.basis[r];
        if b < n_total_guess {
            col_val[b] = tab.rhs(r);
        }
    }
    let mut x = vec![0.0; p.num_vars()];
    for (i, map) in maps.iter().enumerate() {
        x[i] = match map {
            VarMap::Shifted { col, lower } => lower + col_val[*col],
            VarMap::Split { plus, minus } => col_val[*plus] - col_val[*minus],
        };
    }
    // `obj` covers only the shifted columns; recompute from the recovered
    // point so constant offsets from variable lower bounds are included.
    let _ = obj;
    let objective = p.objective_value(&x);
    debug_assert!(p.is_feasible(&x, 1e-5), "simplex returned an infeasible point: {x:?}");
    Solution {
        status: Status::Optimal,
        x,
        objective,
        iterations: total_iters,
        phase1_iterations: phase1_iters,
        phase2_iterations: phase2_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max_2d() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  → (2, 6), obj 36
        let mut p = Problem::new();
        p.set_sense(Sense::Maximize);
        let x = p.add_nonneg(3.0);
        let y = p.add_nonneg(5.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn min_with_ge_constraints_uses_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3  → x=7,y=3, obj 23
        let mut p = Problem::new();
        let x = p.add_nonneg(2.0);
        let y = p.add_nonneg(3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
        p.add_constraint(&[(y, 1.0)], Cmp::Ge, 3.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 23.0);
        assert_close(s.x[0], 7.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 5, x - y = 1 → x=3, y=2, obj 7
        let mut p = Problem::new();
        let x = p.add_nonneg(1.0);
        let y = p.add_nonneg(2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 7.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new();
        let x = p.add_nonneg(1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve(&p).status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new();
        p.set_sense(Sense::Maximize);
        let x = p.add_nonneg(1.0);
        let y = p.add_nonneg(1.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(solve(&p).status, Status::Unbounded);
    }

    #[test]
    fn bounded_variable_upper_limits() {
        // max x with 0 <= x <= 7 and no other constraints
        let mut p = Problem::new();
        p.set_sense(Sense::Maximize);
        let _x = p.add_var(0.0, 7.0, 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 7.0);
    }

    #[test]
    fn shifted_lower_bound() {
        // min x with x >= 3 (lower bound, not constraint)
        let mut p = Problem::new();
        let _x = p.add_var(3.0, f64::INFINITY, 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 3.0);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn negative_lower_bound() {
        // min x with -5 <= x <= 5 → x = -5
        let mut p = Problem::new();
        let _x = p.add_var(-5.0, 5.0, 1.0);
        let s = solve(&p);
        assert_close(s.x[0], -5.0);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn free_variable_split() {
        // min y s.t. y >= x - 3, y >= -x + 1, x free → min at intersection
        // x = 2, y = -1
        let mut p = Problem::new();
        let x = p.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let y = p.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_constraint(&[(y, 1.0), (x, -1.0)], Cmp::Ge, -3.0);
        p.add_constraint(&[(y, 1.0), (x, 1.0)], Cmp::Ge, 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, -1.0);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // classic degeneracy: multiple constraints active at the optimum
        let mut p = Problem::new();
        p.set_sense(Sense::Maximize);
        let x = p.add_nonneg(10.0);
        let y = p.add_nonneg(-57.0);
        let z = p.add_nonneg(-9.0);
        let w = p.add_nonneg(-24.0);
        p.add_constraint(&[(x, 0.5), (y, -5.5), (z, -2.5), (w, 9.0)], Cmp::Le, 0.0);
        p.add_constraint(&[(x, 0.5), (y, -1.5), (z, -0.5), (w, 1.0)], Cmp::Le, 0.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn transportation_shaped_lp() {
        // 2 sources (supplies 30, 20), 2 sinks (caps 25, 30)
        // costs [[1, 4], [3, 2]] → x11=25, x12=5, x22=20: 25+20+40 = 85
        let mut p = Problem::new();
        let x11 = p.add_nonneg(1.0);
        let x12 = p.add_nonneg(4.0);
        let x21 = p.add_nonneg(3.0);
        let x22 = p.add_nonneg(2.0);
        p.add_constraint(&[(x11, 1.0), (x12, 1.0)], Cmp::Eq, 30.0);
        p.add_constraint(&[(x21, 1.0), (x22, 1.0)], Cmp::Eq, 20.0);
        p.add_constraint(&[(x11, 1.0), (x21, 1.0)], Cmp::Le, 25.0);
        p.add_constraint(&[(x12, 1.0), (x22, 1.0)], Cmp::Le, 30.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 85.0);
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = Problem::new();
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn redundant_equality_rows_handled() {
        // x + y = 4 stated twice (redundant artificial row in phase 1)
        let mut p = Problem::new();
        let x = p.add_nonneg(1.0);
        let y = p.add_nonneg(1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // -x <= -3  ≡  x >= 3
        let mut p = Problem::new();
        let x = p.add_nonneg(1.0);
        p.add_constraint(&[(x, -1.0)], Cmp::Le, -3.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn fixed_variable() {
        let mut p = Problem::new();
        let x = p.add_var(2.5, 2.5, 1.0);
        let y = p.add_nonneg(1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.x[0], 2.5);
        assert_close(s.x[1], 1.5);
    }
}
