//! Specialized solver for the Hitchcock transportation problem.
//!
//! Once the `T_rmin` costs are known, the DUST placement model (Eq. 3) *is*
//! a transportation LP: ship `Cs_i` units out of every Busy node `i`
//! (equality, Eq. 3b) into Offload-candidates `j` with spare capacity
//! `Cd_j` (inequality, Eq. 3a), minimizing `Σ x_ij · T_rmin(i,j)`. This
//! module solves that structure directly — Vogel's approximation for the
//! initial basis, then MODI (u-v) improvement on the basis spanning tree —
//! which is far faster than the general simplex for the many small problems
//! the heuristic spawns (ablation 2 in DESIGN.md).
//!
//! Unreachable (forbidden) pairs are modeled with `f64::INFINITY` costs;
//! internally they become a big-M cost, and any positive flow left on them
//! at the optimum proves the instance infeasible.

/// A transportation instance.
///
/// `cost` is row-major `supply.len() × capacity.len()`; `f64::INFINITY`
/// marks a forbidden (unreachable) route.
#[derive(Debug, Clone)]
pub struct TransportProblem {
    /// Amount that *must* leave each source (`Cs_i`, Eq. 3b).
    pub supply: Vec<f64>,
    /// Maximum each sink can absorb (`Cd_j`, Eq. 3a).
    pub capacity: Vec<f64>,
    /// Row-major unit shipping costs.
    pub cost: Vec<f64>,
}

/// Outcome of a transportation solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportStatus {
    /// All supply was shipped over permitted routes at minimum cost.
    Optimal,
    /// Supply exceeds reachable capacity — no feasible shipment exists.
    Infeasible,
}

/// Transportation solution: flows and objective.
#[derive(Debug, Clone)]
pub struct TransportSolution {
    /// Solve outcome.
    pub status: TransportStatus,
    /// Row-major flows `x_ij` (empty unless optimal).
    pub flow: Vec<f64>,
    /// `Σ x_ij · c_ij` (NaN unless optimal).
    pub objective: f64,
    /// MODI improvement pivots performed.
    pub iterations: usize,
    /// Dual values `u_i` per source (empty unless optimal): the marginal
    /// cost of one more unit of supply at source `i`.
    pub row_potentials: Vec<f64>,
    /// Dual values `v_j` per sink (empty unless optimal): the shadow price
    /// of one more unit of capacity at sink `j` — which Offload-candidate
    /// is worth upgrading.
    pub col_potentials: Vec<f64>,
    /// The optimal spanning-tree basis, reusable as
    /// [`SolveOptions::warm_start`] for the next solve of a similar
    /// instance (`None` on infeasible or trivial solves, and on
    /// recombined partitioned solutions).
    pub basis: Option<Basis>,
    /// True when this solve started from an accepted warm-start basis
    /// instead of the Vogel initial-assignment phase.
    pub warm_used: bool,
}

/// A spanning-tree basis exported from an optimal transportation solve.
///
/// The cells live on the *balanced* instance (real supply rows plus the
/// dummy slack source the solver appends), so a basis round-trips between
/// solves without the caller ever seeing the balancing. Feeding a stale
/// basis back in via [`SolveOptions::warm_start`] can never change the
/// answer: MODI converges to the optimum from *any* basic feasible
/// solution, and a basis that no longer fits (changed dimensions, not
/// spanning, or infeasible for the new supplies/capacities) is silently
/// rejected in favor of the cold Vogel start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Balanced-instance rows (real supply rows + 1 dummy).
    rows: usize,
    /// Sink columns.
    cols: usize,
    /// Basic cells `(row, col)` of the balanced instance, row-major order.
    cells: Vec<(u32, u32)>,
}

impl Basis {
    /// Balanced-instance dimensions `(rows, cols)`; `rows` counts the
    /// dummy slack source the solver appends.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of basic cells — `rows + cols - 1` for a spanning tree.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the basis holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Knobs for one transportation solve.
#[derive(Debug, Clone, Default)]
pub struct SolveOptions {
    /// Reuse this spanning-tree basis from a previous round instead of
    /// running the Vogel initial-assignment phase. A basis that does not
    /// fit the current instance falls back to the cold start (counted as
    /// `lp.warm_rejects`); an accepted one pins `lp.pivots_saved` by the
    /// `rows + cols - 1` initial assignments it skipped.
    pub warm_start: Option<Basis>,
}

/// How a solve used (or didn't use) its warm-start basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarmUse {
    /// No warm basis was offered.
    Cold,
    /// A warm basis was offered but did not fit the instance.
    Rejected,
    /// The warm basis seeded the solve.
    Accepted,
}

impl TransportProblem {
    /// Validate and create an instance.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent or any supply/capacity is
    /// negative or non-finite.
    pub fn new(supply: Vec<f64>, capacity: Vec<f64>, cost: Vec<f64>) -> Self {
        assert_eq!(cost.len(), supply.len() * capacity.len(), "cost matrix shape mismatch");
        for &s in &supply {
            assert!(s.is_finite() && s >= 0.0, "supply must be finite and >= 0, got {s}");
        }
        for &d in &capacity {
            assert!(d.is_finite() && d >= 0.0, "capacity must be finite and >= 0, got {d}");
        }
        for &c in &cost {
            assert!(!c.is_nan() && c >= 0.0, "costs must be >= 0 or +inf, got {c}");
        }
        TransportProblem { supply, capacity, cost }
    }

    /// The single entry point: solve and record solver metrics into
    /// `obs` — a MODI pivot counter and histogram plus one
    /// `TransportSolve` trace event. A disabled handle skips all
    /// recording, preserving the untraced path exactly.
    pub fn solve_with(&self, obs: &dust_obs::ObsHandle) -> TransportSolution {
        self.solve_with_options(obs, &SolveOptions::default())
    }

    /// Solve with explicit [`SolveOptions`] (warm-start basis reuse).
    /// Warm and cold solves reach the same objective; the split between
    /// `lp.warm_pivots` and `lp.cold_pivots` records where the pivots
    /// went, and `lp.pivots_saved` the initial assignments a warm start
    /// skipped.
    pub fn solve_with_options(
        &self,
        obs: &dust_obs::ObsHandle,
        opts: &SolveOptions,
    ) -> TransportSolution {
        let _prof = obs.prof_scope("lp.transport.solve");
        let (s, warm) = self.solve_inner(opts.warm_start.as_ref());
        if obs.is_enabled() {
            obs.counter_inc("lp.transport.solves");
            obs.counter_add("lp.transport.pivots", s.iterations as u64);
            obs.observe("lp.transport.pivots", s.iterations as f64);
            match warm {
                WarmUse::Accepted => {
                    obs.counter_inc("lp.warm_solves");
                    obs.counter_add("lp.warm_pivots", s.iterations as u64);
                    let skipped = s.basis.as_ref().map(|b| b.len()).unwrap_or(0);
                    obs.counter_add("lp.pivots_saved", skipped as u64);
                }
                WarmUse::Rejected => {
                    obs.counter_inc("lp.warm_rejects");
                    obs.counter_add("lp.cold_pivots", s.iterations as u64);
                }
                WarmUse::Cold => {
                    obs.counter_add("lp.cold_pivots", s.iterations as u64);
                }
            }
            obs.trace(dust_obs::TraceEvent::TransportSolve { pivots: s.iterations as u64 });
        }
        s
    }

    /// Solve with no observability.
    pub fn solve(&self) -> TransportSolution {
        self.solve_with(&dust_obs::ObsHandle::disabled())
    }

    fn solve_inner(&self, warm: Option<&Basis>) -> (TransportSolution, WarmUse) {
        const TOL: f64 = 1e-9;
        let m0 = self.supply.len();
        let n = self.capacity.len();
        let total_supply: f64 = self.supply.iter().sum();
        let total_cap: f64 = self.capacity.iter().sum();
        if m0 == 0 || total_supply <= TOL {
            // nothing to ship
            return (
                TransportSolution {
                    status: TransportStatus::Optimal,
                    flow: vec![0.0; m0 * n],
                    objective: 0.0,
                    iterations: 0,
                    row_potentials: vec![0.0; m0],
                    col_potentials: vec![0.0; n],
                    basis: None,
                    warm_used: false,
                },
                WarmUse::Cold,
            );
        }
        if n == 0 || total_supply > total_cap + TOL {
            return (
                TransportSolution {
                    status: TransportStatus::Infeasible,
                    flow: Vec::new(),
                    objective: f64::NAN,
                    iterations: 0,
                    row_potentials: Vec::new(),
                    col_potentials: Vec::new(),
                    basis: None,
                    warm_used: false,
                },
                WarmUse::Cold,
            );
        }

        // Big-M for forbidden routes: dominates any mix of real costs.
        let max_finite = self.cost.iter().copied().filter(|c| c.is_finite()).fold(0.0f64, f64::max);
        let big_m = (max_finite + 1.0) * 1e6;

        // Balanced instance: extra dummy source absorbing spare capacity at
        // zero cost. Rows = m0 + 1 (dummy last), all sinks become equality.
        let m = m0 + 1;
        let mut c = vec![0.0; m * n];
        for i in 0..m0 {
            for j in 0..n {
                let v = self.cost[i * n + j];
                c[i * n + j] = if v.is_finite() { v } else { big_m };
            }
        }
        // dummy row cost 0 (already zeroed)
        let mut supply: Vec<f64> = self.supply.clone();
        supply.push(total_cap - total_supply);
        let demand: Vec<f64> = self.capacity.clone();

        let (mut state, warm_use) =
            match warm.and_then(|b| State::from_basis(m, n, &supply, &demand, b)) {
                Some(s) => (s, WarmUse::Accepted),
                None => {
                    let mut st = State::vogel_initial(m, n, &supply, &demand, &c);
                    st.complete_basis(m, n);
                    (st, if warm.is_some() { WarmUse::Rejected } else { WarmUse::Cold })
                }
            };
        let (iterations, u_bal, v_bal) = state.modi_optimize(m, n, &c);

        // Forbidden flow check (only real rows matter).
        let mut objective = 0.0;
        let mut flow = vec![0.0; m0 * n];
        for i in 0..m0 {
            for j in 0..n {
                let f = state.flow[i * n + j];
                if f > TOL && !self.cost[i * n + j].is_finite() {
                    return (
                        TransportSolution {
                            status: TransportStatus::Infeasible,
                            flow: Vec::new(),
                            objective: f64::NAN,
                            iterations,
                            row_potentials: Vec::new(),
                            col_potentials: Vec::new(),
                            basis: None,
                            warm_used: warm_use == WarmUse::Accepted,
                        },
                        warm_use,
                    );
                }
                flow[i * n + j] = f;
                objective += f * self.cost[i * n + j].min(big_m);
            }
        }
        // Normalize duals so the dummy source's potential is zero: shifting
        // all u by -u_dummy and all v by +u_dummy preserves u_i + v_j and
        // anchors sink potentials at "price relative to leaving capacity
        // unused" (the dummy row costs 0).
        let shift = u_bal[m0];
        let row_potentials: Vec<f64> = u_bal[..m0].iter().map(|u| u - shift).collect();
        let col_potentials: Vec<f64> = v_bal.iter().map(|v| v + shift).collect();
        let basis = Some(state.export_basis(m, n));
        (
            TransportSolution {
                status: TransportStatus::Optimal,
                flow,
                objective,
                iterations,
                row_potentials,
                col_potentials,
                basis,
                warm_used: warm_use == WarmUse::Accepted,
            },
            warm_use,
        )
    }
}

/// Internal solver state over the balanced instance.
struct State {
    /// Row-major flows, `m × n` (including the dummy row).
    flow: Vec<f64>,
    /// Basis membership per cell.
    basic: Vec<bool>,
}

impl State {
    /// Collect the current basis as an exportable cell set.
    fn export_basis(&self, m: usize, n: usize) -> Basis {
        let mut cells = Vec::with_capacity(m + n - 1);
        for i in 0..m {
            for j in 0..n {
                if self.basic[i * n + j] {
                    cells.push((i as u32, j as u32));
                }
            }
        }
        Basis { rows: m, cols: n, cells }
    }

    /// Rebuild solver state from a previous round's basis: mark the cells
    /// basic and recompute the unique tree flows by leaf-peeling the
    /// spanning tree against the *current* supplies and demands. Returns
    /// `None` — caller falls back to the cold Vogel start — when the basis
    /// does not fit: wrong dimensions or cell count, duplicate or
    /// out-of-range cells, a cell set that is not a spanning tree (the
    /// peel stalls), or tree flows forced negative by the new balances.
    fn from_basis(
        m: usize,
        n: usize,
        supply: &[f64],
        demand: &[f64],
        basis: &Basis,
    ) -> Option<State> {
        const FEAS_TOL: f64 = 1e-9;
        if basis.rows != m || basis.cols != n || basis.cells.len() != m + n - 1 {
            return None;
        }
        let mut basic = vec![false; m * n];
        // incident basic-cell indices per vertex (rows 0..m, cols m..m+n)
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m + n];
        for (k, &(bi, bj)) in basis.cells.iter().enumerate() {
            let (i, j) = (bi as usize, bj as usize);
            if i >= m || j >= n || basic[i * n + j] {
                return None;
            }
            basic[i * n + j] = true;
            adj[i].push(k);
            adj[m + j].push(k);
        }
        let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
        if degree.contains(&0) {
            return None; // an isolated vertex can never be spanned
        }
        // Each leaf's single remaining cell must carry the leaf's entire
        // residual balance; peeling a tree consumes every cell exactly once.
        let mut resid: Vec<f64> = supply.iter().chain(demand.iter()).copied().collect();
        let mut used = vec![false; basis.cells.len()];
        let mut flow = vec![0.0; m * n];
        let mut leaves: Vec<usize> = (0..m + n).filter(|&v| degree[v] == 1).collect();
        let mut assigned = 0usize;
        while let Some(v) = leaves.pop() {
            let Some(&k) = adj[v].iter().find(|&&k| !used[k]) else { continue };
            let (i, j) = (basis.cells[k].0 as usize, basis.cells[k].1 as usize);
            let f = resid[v];
            if f < -FEAS_TOL {
                return None; // old basis is infeasible for the new balances
            }
            flow[i * n + j] = f.max(0.0);
            used[k] = true;
            assigned += 1;
            let other = if v < m { m + j } else { i };
            resid[other] -= f;
            degree[v] -= 1;
            degree[other] -= 1;
            if degree[other] == 1 {
                leaves.push(other);
            }
        }
        if assigned != basis.cells.len() {
            return None; // the cell set was not a spanning tree
        }
        Some(State { flow, basic })
    }

    /// Vogel's approximation method initial basic feasible solution.
    fn vogel_initial(m: usize, n: usize, supply: &[f64], demand: &[f64], c: &[f64]) -> State {
        const TOL: f64 = 1e-12;
        let mut s = supply.to_vec();
        let mut d = demand.to_vec();
        let mut row_done = vec![false; m];
        let mut col_done = vec![false; n];
        let mut flow = vec![0.0; m * n];
        let mut basic = vec![false; m * n];
        let mut rows_left = m;
        let mut cols_left = n;

        // two smallest costs among open cells of a row/col
        let row_penalty = |i: usize, col_done: &[bool]| -> (f64, usize) {
            let (mut c1, mut c2, mut jmin) = (f64::INFINITY, f64::INFINITY, usize::MAX);
            for (j, _) in col_done.iter().enumerate().filter(|(_, d)| !**d) {
                let v = c[i * n + j];
                if v < c1 {
                    c2 = c1;
                    c1 = v;
                    jmin = j;
                } else if v < c2 {
                    c2 = v;
                }
            }
            (if c2.is_finite() { c2 - c1 } else { c1 }, jmin)
        };
        let col_penalty = |j: usize, row_done: &[bool]| -> (f64, usize) {
            let (mut c1, mut c2, mut imin) = (f64::INFINITY, f64::INFINITY, usize::MAX);
            for (i, _) in row_done.iter().enumerate().filter(|(_, d)| !**d) {
                let v = c[i * n + j];
                if v < c1 {
                    c2 = c1;
                    c1 = v;
                    imin = i;
                } else if v < c2 {
                    c2 = v;
                }
            }
            (if c2.is_finite() { c2 - c1 } else { c1 }, imin)
        };

        while rows_left > 0 && cols_left > 0 {
            // pick the open row or column with the largest penalty
            let mut best_pen = -1.0;
            let mut pick: Option<(usize, usize)> = None; // (i, j)
            for (i, _) in row_done.iter().enumerate().filter(|(_, d)| !**d) {
                let (pen, j) = row_penalty(i, &col_done);
                if j != usize::MAX && pen > best_pen {
                    best_pen = pen;
                    pick = Some((i, j));
                }
            }
            for (j, _) in col_done.iter().enumerate().filter(|(_, d)| !**d) {
                let (pen, i) = col_penalty(j, &row_done);
                if i != usize::MAX && pen > best_pen {
                    best_pen = pen;
                    pick = Some((i, j));
                }
            }
            let Some((i, j)) = pick else { break };
            let q = s[i].min(d[j]);
            flow[i * n + j] = q;
            basic[i * n + j] = true;
            s[i] -= q;
            d[j] -= q;
            // close exactly one of row/col per assignment (keeps the basis
            // at m + n - 1 cells); close the exhausted one, preferring the
            // row on ties unless it is the last row.
            if s[i] <= TOL && (d[j] > TOL || rows_left > 1) {
                row_done[i] = true;
                rows_left -= 1;
            } else {
                col_done[j] = true;
                cols_left -= 1;
            }
        }
        State { flow, basic }
    }

    /// Ensure the basis is a spanning tree with exactly `m + n - 1` cells,
    /// adding zero-flow cells that join distinct components if VAM left the
    /// basis degenerate.
    fn complete_basis(&mut self, m: usize, n: usize) {
        // union-find over m row-vertices and n col-vertices
        let mut parent: Vec<usize> = (0..m + n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        let mut count = 0usize;
        for i in 0..m {
            for j in 0..n {
                if self.basic[i * n + j] {
                    count += 1;
                    let (a, b) = (find(&mut parent, i), find(&mut parent, m + j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        // add zero cells joining components until spanning
        'outer: while count < m + n - 1 {
            for i in 0..m {
                for j in 0..n {
                    if !self.basic[i * n + j] {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, m + j));
                        if a != b {
                            parent[a] = b;
                            self.basic[i * n + j] = true;
                            count += 1;
                            continue 'outer;
                        }
                    }
                }
            }
            // all components already joined but count < m+n-1 can only
            // happen on empty dimensions; bail out defensively
            break;
        }
    }

    /// MODI (u-v) optimization. Returns `(pivot count, u, v)` with the
    /// final dual potentials of the balanced instance.
    fn modi_optimize(&mut self, m: usize, n: usize, c: &[f64]) -> (usize, Vec<f64>, Vec<f64>) {
        const TOL: f64 = 1e-7;
        let max_iters = 50 * (m + n).max(16) * (m + n).max(16);
        let mut iters = 0usize;
        loop {
            if iters >= max_iters {
                // Should not happen; the flows remain feasible either way.
                return (iters, vec![0.0; m], vec![0.0; n]);
            }
            // 1. potentials via BFS over the basis tree
            let mut u = vec![f64::NAN; m];
            let mut v = vec![f64::NAN; n];
            u[0] = 0.0;
            let mut stack = vec![(true, 0usize)]; // (is_row, idx)
            while let Some((is_row, idx)) = stack.pop() {
                if is_row {
                    for j in 0..n {
                        if self.basic[idx * n + j] && v[j].is_nan() {
                            v[j] = c[idx * n + j] - u[idx];
                            stack.push((false, j));
                        }
                    }
                } else {
                    for i in 0..m {
                        if self.basic[i * n + idx] && u[i].is_nan() {
                            u[i] = c[i * n + idx] - v[idx];
                            stack.push((true, i));
                        }
                    }
                }
            }
            // A properly completed basis spans all vertices; guard anyway.
            debug_assert!(
                u.iter().all(|x| !x.is_nan()) && v.iter().all(|x| !x.is_nan()),
                "basis does not span the bipartite graph"
            );

            // 2. most negative reduced cost among nonbasic cells
            let mut best = -TOL;
            let mut enter: Option<(usize, usize)> = None;
            for i in 0..m {
                for j in 0..n {
                    if !self.basic[i * n + j] {
                        let rc = c[i * n + j] - u[i] - v[j];
                        if rc < best {
                            best = rc;
                            enter = Some((i, j));
                        }
                    }
                }
            }
            let Some((ei, ej)) = enter else {
                return (iters, u, v);
            };

            // 3. unique cycle: tree path from row ei to col ej, then the
            //    entering edge closes it. Find the path by BFS on the basis.
            //    vertices: rows 0..m, cols m..m+n
            let total = m + n;
            let mut prev = vec![usize::MAX; total];
            let mut seen = vec![false; total];
            let start = ei;
            let goal = m + ej;
            seen[start] = true;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(x) = queue.pop_front() {
                if x == goal {
                    break;
                }
                if x < m {
                    for j in 0..n {
                        if self.basic[x * n + j] && !seen[m + j] {
                            seen[m + j] = true;
                            prev[m + j] = x;
                            queue.push_back(m + j);
                        }
                    }
                } else {
                    let j = x - m;
                    for i in 0..m {
                        if self.basic[i * n + j] && !seen[i] {
                            seen[i] = true;
                            prev[i] = x;
                            queue.push_back(i);
                        }
                    }
                }
            }
            debug_assert!(seen[goal], "basis tree must connect entering endpoints");

            // reconstruct vertex path goal -> start, then edge list
            let mut vpath = vec![goal];
            let mut cur = goal;
            while cur != start {
                cur = prev[cur];
                vpath.push(cur);
            }
            vpath.reverse(); // start (row ei) ... goal (col ej)

            // cycle cells alternate starting with the entering cell (+):
            // (ei, ej) is '+', then walking the tree path from col ej back
            // toward row ei alternates -, +, -, ...
            let mut plus: Vec<(usize, usize)> = vec![(ei, ej)];
            let mut minus: Vec<(usize, usize)> = Vec::new();
            // edges along vpath: (vpath[t], vpath[t+1]) are tree edges
            for (t, w) in vpath.windows(2).enumerate() {
                let (a, b) = (w[0], w[1]);
                let cell = if a < m { (a, b - m) } else { (b, a - m) };
                // t = 0 edge touches row ei → sign '-', then alternate
                if t % 2 == 0 {
                    minus.push(cell);
                } else {
                    plus.push(cell);
                }
            }

            // 4. theta = min flow on '-' cells; update and swap basis
            let (mut theta, mut leave) = (f64::INFINITY, minus[0]);
            for &(i, j) in &minus {
                let f = self.flow[i * n + j];
                if f < theta {
                    theta = f;
                    leave = (i, j);
                }
            }
            for &(i, j) in &plus {
                self.flow[i * n + j] += theta;
            }
            for &(i, j) in &minus {
                self.flow[i * n + j] -= theta;
            }
            self.basic[ei * n + ej] = true;
            self.basic[leave.0 * n + leave.1] = false;
            self.flow[leave.0 * n + leave.1] = 0.0;
            iters += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_balanced() {
        // supplies [20, 30, 25], demands [10, 28, 37], classic instance
        let p = TransportProblem::new(
            vec![20.0, 30.0, 25.0],
            vec![10.0, 28.0, 37.0],
            vec![4.0, 3.0, 2.0, 1.0, 5.0, 0.0, 3.0, 8.0, 6.0],
        );
        let s = p.solve();
        assert_eq!(s.status, TransportStatus::Optimal);
        // LP optimum cross-checked with the simplex in integration tests;
        // here verify feasibility + conservation.
        for i in 0..3 {
            let row: f64 = (0..3).map(|j| s.flow[i * 3 + j]).sum();
            assert_close(row, p.supply[i]);
        }
        for j in 0..3 {
            let col: f64 = (0..3).map(|i| s.flow[i * 3 + j]).sum();
            assert!(col <= p.capacity[j] + 1e-9);
        }
    }

    #[test]
    fn simple_two_by_two() {
        // min: costs [[1,4],[3,2]], supplies [30,20], caps [25,30] → 85
        let p = TransportProblem::new(vec![30.0, 20.0], vec![25.0, 30.0], vec![1.0, 4.0, 3.0, 2.0]);
        let s = p.solve();
        assert_eq!(s.status, TransportStatus::Optimal);
        assert_close(s.objective, 85.0);
        assert_close(s.flow[0], 25.0); // x11
        assert_close(s.flow[1], 5.0); // x12
        assert_close(s.flow[3], 20.0); // x22
    }

    #[test]
    fn excess_capacity_absorbed() {
        // single source, two sinks with plenty of room: all flow to cheap sink
        let p = TransportProblem::new(vec![10.0], vec![100.0, 100.0], vec![5.0, 1.0]);
        let s = p.solve();
        assert_eq!(s.status, TransportStatus::Optimal);
        assert_close(s.objective, 10.0);
        assert_close(s.flow[1], 10.0);
    }

    #[test]
    fn infeasible_when_supply_exceeds_capacity() {
        let p = TransportProblem::new(vec![50.0], vec![10.0, 20.0], vec![1.0, 1.0]);
        assert_eq!(p.solve().status, TransportStatus::Infeasible);
    }

    #[test]
    fn forbidden_route_forces_detour() {
        // source 0 can only reach sink 1; cheap sink 0 is forbidden
        let p = TransportProblem::new(vec![10.0], vec![100.0, 100.0], vec![f64::INFINITY, 7.0]);
        let s = p.solve();
        assert_eq!(s.status, TransportStatus::Optimal);
        assert_close(s.objective, 70.0);
        assert_close(s.flow[0], 0.0);
    }

    #[test]
    fn forbidden_route_makes_infeasible() {
        // both sinks unreachable
        let p = TransportProblem::new(
            vec![10.0],
            vec![100.0, 100.0],
            vec![f64::INFINITY, f64::INFINITY],
        );
        assert_eq!(p.solve().status, TransportStatus::Infeasible);
    }

    #[test]
    fn partially_forbidden_capacity_shortfall_is_infeasible() {
        // 30 units must leave, reachable sink holds only 20
        let p = TransportProblem::new(vec![30.0], vec![20.0, 50.0], vec![1.0, f64::INFINITY]);
        assert_eq!(p.solve().status, TransportStatus::Infeasible);
    }

    #[test]
    fn zero_supply_trivial() {
        let p = TransportProblem::new(vec![0.0, 0.0], vec![5.0], vec![1.0, 2.0]);
        let s = p.solve();
        assert_eq!(s.status, TransportStatus::Optimal);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn empty_sinks_with_supply_infeasible() {
        let p = TransportProblem::new(vec![5.0], vec![], vec![]);
        assert_eq!(p.solve().status, TransportStatus::Infeasible);
    }

    #[test]
    fn degenerate_instance_terminates() {
        // supplies exactly match single-sink capacities → many zero cells
        let p = TransportProblem::new(vec![10.0, 10.0], vec![10.0, 10.0], vec![1.0, 2.0, 2.0, 1.0]);
        let s = p.solve();
        assert_eq!(s.status, TransportStatus::Optimal);
        assert_close(s.objective, 20.0);
    }

    #[test]
    fn exact_balance() {
        let p = TransportProblem::new(vec![15.0, 25.0], vec![20.0, 20.0], vec![2.0, 3.0, 4.0, 1.0]);
        let s = p.solve();
        assert_eq!(s.status, TransportStatus::Optimal);
        // x11=15 (30), x21=5 (20), x22=20 (20) → 70
        assert_close(s.objective, 70.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_rejected() {
        TransportProblem::new(vec![1.0], vec![1.0, 2.0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "supply must be finite")]
    fn negative_supply_rejected() {
        TransportProblem::new(vec![-1.0], vec![1.0], vec![1.0]);
    }
}

#[cfg(test)]
mod duality_tests {
    use super::*;

    /// Verify LP duality on an optimal solution: reduced costs
    /// `c_ij − u_i − v_j ≥ 0` everywhere, with complementary slackness
    /// (zero reduced cost wherever flow is positive).
    fn check_duality(p: &TransportProblem, s: &TransportSolution) {
        assert_eq!(s.status, TransportStatus::Optimal);
        let n = p.capacity.len();
        for (i, &u) in s.row_potentials.iter().enumerate() {
            for (j, &v) in s.col_potentials.iter().enumerate() {
                let c = p.cost[i * n + j];
                if !c.is_finite() {
                    continue; // forbidden cells carry big-M internally
                }
                let reduced = c - u - v;
                assert!(reduced >= -1e-6, "dual infeasible at ({i},{j}): {reduced}");
                if s.flow[i * n + j] > 1e-9 {
                    assert!(
                        reduced.abs() < 1e-6,
                        "complementary slackness violated at ({i},{j}): {reduced}"
                    );
                }
            }
        }
        // sinks with unused capacity have non-positive... rather: the dummy
        // row (cost 0) is basic on every sink with slack, so v_j <= 0 there.
        let used: Vec<f64> =
            (0..n).map(|j| (0..p.supply.len()).map(|i| s.flow[i * n + j]).sum()).collect();
        for (j, &v) in s.col_potentials.iter().enumerate() {
            if used[j] < p.capacity[j] - 1e-6 {
                assert!(v <= 1e-6, "slack sink {j} must have v <= 0, got {v}");
            }
        }
    }

    #[test]
    fn duality_on_textbook_instance() {
        let p = TransportProblem::new(
            vec![20.0, 30.0, 25.0],
            vec![10.0, 28.0, 37.0],
            vec![4.0, 3.0, 2.0, 1.0, 5.0, 0.0, 3.0, 8.0, 6.0],
        );
        check_duality(&p, &p.solve());
    }

    #[test]
    fn duality_with_excess_capacity() {
        let p = TransportProblem::new(vec![15.0], vec![100.0, 100.0], vec![2.0, 5.0]);
        let s = p.solve();
        check_duality(&p, &s);
        // both sinks have slack → shadow price of extra capacity is zero
        // at the unused one and the binding constraint is the supply
        assert!(s.col_potentials.iter().all(|&v| v <= 1e-9));
    }

    #[test]
    fn duality_with_forbidden_cells() {
        let p = TransportProblem::new(
            vec![10.0, 5.0],
            vec![8.0, 20.0],
            vec![1.0, 4.0, f64::INFINITY, 2.0],
        );
        check_duality(&p, &p.solve());
    }

    #[test]
    fn tight_capacity_has_negative_shadow_price_gain() {
        // sink 0 is cheap but tiny: its capacity constraint binds, so
        // increasing it would reduce cost — detectable via duals: v_0 < v_1
        let p = TransportProblem::new(vec![30.0], vec![10.0, 100.0], vec![1.0, 6.0]);
        let s = p.solve();
        check_duality(&p, &s);
        assert!(
            s.col_potentials[0] < s.col_potentials[1] - 1.0,
            "binding cheap sink must show a more negative potential: {:?}",
            s.col_potentials
        );
    }

    #[test]
    fn strong_duality_objective_matches() {
        // balanced-by-dummy duality: objective = Σ u_i s_i + Σ v_j d_j holds
        // for the balanced instance; with the dummy normalized to u = 0 the
        // identity carries over to the real rows plus full capacities.
        let p = TransportProblem::new(vec![12.0, 8.0], vec![10.0, 15.0], vec![3.0, 7.0, 2.0, 4.0]);
        let s = p.solve();
        let dual_obj: f64 = s
            .row_potentials
            .iter()
            .zip(&p.supply)
            .map(|(u, s)| u * s)
            .chain(s.col_potentials.iter().zip(&p.capacity).map(|(v, d)| v * d))
            .sum();
        assert!(
            (dual_obj - s.objective).abs() < 1e-6,
            "strong duality: dual {dual_obj} vs primal {}",
            s.objective
        );
    }
}

#[cfg(test)]
mod warm_tests {
    use super::*;
    use dust_obs::ObsHandle;

    fn instance() -> TransportProblem {
        TransportProblem::new(
            vec![20.0, 30.0, 25.0],
            vec![40.0, 28.0, 37.0],
            vec![4.0, 3.0, 2.0, 1.0, 5.0, 0.0, 3.0, 8.0, 6.0],
        )
    }

    #[test]
    fn optimal_solves_export_a_spanning_basis() {
        let p = instance();
        let s = p.solve();
        let b = s.basis.expect("optimal solves export a basis");
        // balanced dims: 3 real rows + 1 dummy, 3 cols
        assert_eq!(b.dims(), (4, 3));
        assert_eq!(b.len(), 4 + 3 - 1);
        assert!(!s.warm_used);
    }

    #[test]
    fn warm_start_from_own_basis_needs_zero_pivots() {
        let p = instance();
        let cold = p.solve();
        let obs = ObsHandle::recording(0);
        let opts = SolveOptions { warm_start: cold.basis.clone() };
        let warm = p.solve_with_options(&obs, &opts);
        assert_eq!(warm.status, TransportStatus::Optimal);
        assert!(warm.warm_used, "own basis must be accepted");
        assert_eq!(warm.iterations, 0, "an optimal basis needs no pivots");
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(warm.flow, cold.flow, "same basis, same basic solution");
        assert_eq!(obs.counter("lp.warm_solves"), 1);
        assert_eq!(obs.counter("lp.warm_pivots"), 0);
        assert_eq!(obs.counter("lp.pivots_saved"), 6, "rows+cols-1 assignments skipped");
        assert_eq!(obs.counter("lp.cold_pivots"), 0);
    }

    #[test]
    fn warm_start_reaches_the_cold_objective_after_perturbation() {
        let p = instance();
        let basis = p.solve().basis.unwrap();
        // drift the balances (keeping the instance feasible) and re-solve
        // both ways: objectives must be equal, pivot order need not be
        let mut q = p.clone();
        q.supply[0] = 24.0;
        q.supply[2] = 21.5;
        q.capacity[1] = 31.0;
        let cold = q.solve();
        let warm =
            q.solve_with_options(&ObsHandle::disabled(), &SolveOptions { warm_start: Some(basis) });
        assert_eq!(cold.status, TransportStatus::Optimal);
        assert_eq!(warm.status, TransportStatus::Optimal);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn mismatched_dimensions_fall_back_cold() {
        let p = instance();
        let basis = p.solve().basis.unwrap();
        // a 2-sink instance cannot absorb a 3-sink basis
        let q = TransportProblem::new(vec![5.0, 5.0], vec![10.0, 10.0], vec![1.0, 2.0, 2.0, 1.0]);
        let obs = ObsHandle::recording(0);
        let s = q.solve_with_options(&obs, &SolveOptions { warm_start: Some(basis) });
        assert_eq!(s.status, TransportStatus::Optimal);
        assert!(!s.warm_used);
        assert_eq!(obs.counter("lp.warm_rejects"), 1);
        assert_eq!(obs.counter("lp.warm_solves"), 0);
        assert_eq!(obs.counter("lp.pivots_saved"), 0);
    }

    #[test]
    fn corrupt_basis_is_rejected_not_trusted() {
        let p = instance();
        let good = p.solve().basis.unwrap();
        // right dims and count, but a cycle instead of a spanning tree:
        // cells (0,0),(0,1),(1,0),(1,1) form a 4-cycle
        let cyclic = Basis {
            rows: good.rows,
            cols: good.cols,
            cells: vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 2)],
        };
        let obs = ObsHandle::recording(0);
        let s = p.solve_with_options(&obs, &SolveOptions { warm_start: Some(cyclic) });
        assert_eq!(s.status, TransportStatus::Optimal, "fallback still solves");
        assert!(!s.warm_used);
        assert_eq!(obs.counter("lp.warm_rejects"), 1);
        // and the fallback answer matches the plain cold solve exactly
        assert_eq!(s.objective.to_bits(), p.solve().objective.to_bits());
    }

    #[test]
    fn infeasible_and_trivial_instances_tolerate_warm_options() {
        let basis = instance().solve().basis.unwrap();
        let infeasible = TransportProblem::new(vec![50.0], vec![10.0], vec![1.0]);
        let s = infeasible.solve_with_options(
            &ObsHandle::disabled(),
            &SolveOptions { warm_start: Some(basis.clone()) },
        );
        assert_eq!(s.status, TransportStatus::Infeasible);
        assert!(s.basis.is_none());
        let trivial = TransportProblem::new(vec![0.0], vec![10.0], vec![1.0]);
        let s = trivial
            .solve_with_options(&ObsHandle::disabled(), &SolveOptions { warm_start: Some(basis) });
        assert_eq!(s.status, TransportStatus::Optimal);
        assert!(s.basis.is_none(), "trivial solves have no basis to export");
    }

    #[test]
    fn warm_start_respects_forbidden_routes() {
        // basis exported before a route became forbidden must not smuggle
        // flow onto it: the re-solve still detours (or reports infeasible)
        let p = TransportProblem::new(vec![10.0], vec![100.0, 100.0], vec![2.0, 7.0]);
        let basis = p.solve().basis.unwrap();
        let q = TransportProblem::new(vec![10.0], vec![100.0, 100.0], vec![f64::INFINITY, 7.0]);
        let s =
            q.solve_with_options(&ObsHandle::disabled(), &SolveOptions { warm_start: Some(basis) });
        assert_eq!(s.status, TransportStatus::Optimal);
        assert!((s.objective - 70.0).abs() < 1e-6);
        assert!(s.flow[0].abs() < 1e-9, "no flow on the forbidden route");
    }
}
