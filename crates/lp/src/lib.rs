//! From-scratch linear programming for the DUST reproduction.
//!
//! Replaces the Gurobi toolkit of the paper's evaluation (§V-B) with three
//! cooperating solvers:
//!
//! * [`simplex`] — a general two-phase dense primal simplex over models
//!   built with [`problem::Problem`];
//! * [`transportation`] — a specialized Hitchcock-transportation solver
//!   (Vogel + MODI) matching the exact structure of the placement model
//!   (Eq. 3), much faster for the heuristic's many small subproblems;
//! * [`branch_bound`] — LP-relaxation branch-and-bound for models with
//!   integer variables.
//!
//! # Example
//!
//! ```
//! use dust_lp::{Problem, Cmp, Sense, solve};
//!
//! // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18
//! let mut p = Problem::new();
//! p.set_sense(Sense::Maximize);
//! let x = p.add_nonneg(3.0);
//! let y = p.add_nonneg(5.0);
//! p.add_constraint(&[(x, 1.0)], Cmp::Le, 4.0);
//! p.add_constraint(&[(y, 2.0)], Cmp::Le, 12.0);
//! p.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
//! let s = solve(&p);
//! assert!((s.objective - 36.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod branch_bound;
pub mod export;
pub mod partition;
pub mod problem;
pub mod simplex;
pub mod transportation;

pub use branch_bound::{solve_mip, solve_mip_with, MipOptions, MipSolution};
pub use export::to_lp_format;
pub use partition::{
    solve_partitioned_via, solve_partitioned_via_warm, solve_partitioned_with,
    solve_subs_sequential, PartitionOutcome, PartitionPlan, PartitionWarm, SubProblem,
};
pub use problem::{Cmp, Constraint, Problem, Sense, Var, VarDef};
pub use simplex::{solve, solve_with, Options, Solution, Status};
pub use transportation::{
    Basis, SolveOptions, TransportProblem, TransportSolution, TransportStatus,
};
