//! Linear-program model builder.
//!
//! A thin, allocation-friendly modeling layer in the spirit of the Gurobi
//! Python API the paper used: create variables with bounds, add linear
//! constraints, set a linear objective, then hand the model to a solver
//! ([`crate::simplex::solve`] or, with integer variables, the
//! branch-and-bound layer in [`crate::branch_bound`]).

use std::fmt;

/// Handle to a decision variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub usize);

impl Var {
    /// Index into solution vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    /// Minimize the objective (the DUST placement problem minimizes β).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        })
    }
}

/// One linear constraint: `Σ coeff·var  cmp  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse left-hand side as `(variable, coefficient)` pairs.
    pub terms: Vec<(Var, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand-side constant.
    pub rhs: f64,
}

/// Variable metadata.
#[derive(Debug, Clone, Copy)]
pub struct VarDef {
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
    /// Objective coefficient.
    pub cost: f64,
    /// Whether branch-and-bound must drive this variable to an integer.
    pub integer: bool,
}

/// A linear (or mixed-integer) program under construction.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) sense: Sense,
}

impl Problem {
    /// An empty minimization problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the optimization direction (default: minimize).
    pub fn set_sense(&mut self, sense: Sense) -> &mut Self {
        self.sense = sense;
        self
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with bounds `[lower, upper]` and the given
    /// objective coefficient.
    ///
    /// # Panics
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(&mut self, lower: f64, upper: f64, cost: f64) -> Var {
        assert!(!lower.is_nan() && !upper.is_nan(), "variable bounds must not be NaN");
        assert!(lower <= upper, "empty variable domain [{lower}, {upper}]");
        assert!(cost.is_finite(), "objective coefficient must be finite, got {cost}");
        self.vars.push(VarDef { lower, upper, cost, integer: false });
        Var(self.vars.len() - 1)
    }

    /// Add a non-negative continuous variable (`[0, ∞)`).
    pub fn add_nonneg(&mut self, cost: f64) -> Var {
        self.add_var(0.0, f64::INFINITY, cost)
    }

    /// Add an integer variable with bounds `[lower, upper]`.
    pub fn add_int(&mut self, lower: f64, upper: f64, cost: f64) -> Var {
        let v = self.add_var(lower, upper, cost);
        self.vars[v.0].integer = true;
        v
    }

    /// Add a binary (0/1) variable.
    pub fn add_bool(&mut self, cost: f64) -> Var {
        self.add_int(0.0, 1.0, cost)
    }

    /// Add the constraint `Σ terms  cmp  rhs`. Duplicate variables in
    /// `terms` are summed.
    ///
    /// # Panics
    /// Panics on NaN/infinite coefficients or rhs, or out-of-range variables.
    pub fn add_constraint(&mut self, terms: &[(Var, f64)], cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite, got {rhs}");
        let mut merged: Vec<(Var, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.0 < self.vars.len(), "variable {v:?} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite, got {c}");
            match merged.iter_mut().find(|(w, _)| *w == v) {
                Some((_, acc)) => *acc += c,
                None => merged.push((v, c)),
            }
        }
        self.constraints.push(Constraint { terms: merged, cmp, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    pub fn var_def(&self, v: Var) -> &VarDef {
        &self.vars[v.0]
    }

    /// Indices of the integer-constrained variables.
    pub fn integer_vars(&self) -> Vec<Var> {
        self.vars.iter().enumerate().filter(|(_, d)| d.integer).map(|(i, _)| Var(i)).collect()
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(d, &xi)| d.cost * xi).sum()
    }

    /// Check primal feasibility of a point within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (d, &xi) in self.vars.iter().zip(x) {
            if xi < d.lower - tol || xi > d.upper + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * x[v.0]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut p = Problem::new();
        let x = p.add_nonneg(1.0);
        let y = p.add_var(-1.0, 5.0, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_def(y).upper, 5.0);
    }

    #[test]
    fn duplicate_terms_merge() {
        let mut p = Problem::new();
        let x = p.add_nonneg(0.0);
        p.add_constraint(&[(x, 1.0), (x, 2.0)], Cmp::Eq, 3.0);
        assert_eq!(p.constraints[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn feasibility_check() {
        let mut p = Problem::new();
        let x = p.add_nonneg(1.0);
        let y = p.add_nonneg(1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 1.0);
        assert!(p.is_feasible(&[1.0, 3.0], 1e-9));
        assert!(!p.is_feasible(&[0.5, 0.0], 1e-9)); // violates x >= 1
        assert!(!p.is_feasible(&[3.0, 3.0], 1e-9)); // violates sum <= 4
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9)); // violates x >= 0
        assert!(!p.is_feasible(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value_respects_costs() {
        let mut p = Problem::new();
        let _x = p.add_nonneg(2.0);
        let _y = p.add_nonneg(3.0);
        assert_eq!(p.objective_value(&[1.0, 2.0]), 8.0);
    }

    #[test]
    fn integer_vars_listed() {
        let mut p = Problem::new();
        let _x = p.add_nonneg(0.0);
        let b = p.add_bool(1.0);
        let i = p.add_int(0.0, 10.0, 1.0);
        assert_eq!(p.integer_vars(), vec![b, i]);
    }

    #[test]
    #[should_panic(expected = "empty variable domain")]
    fn inverted_bounds_rejected() {
        Problem::new().add_var(2.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_var_rejected() {
        let mut p = Problem::new();
        p.add_constraint(&[(Var(3), 1.0)], Cmp::Le, 1.0);
    }
}
