//! Branch-and-bound mixed-integer layer over the simplex solver.
//!
//! The paper labels its placement model an ILP even though the published
//! decision variables `x_ij` are continuous; this layer completes the ILP
//! story so integer-restricted variants (e.g. whole monitoring agents as
//! indivisible units, §VI future work) solve with the same toolkit.
//!
//! Standard LP-relaxation branch-and-bound: solve the relaxation, pick the
//! most fractional integer variable, branch on `x ≤ ⌊v⌋` / `x ≥ ⌈v⌉`,
//! explore best-bound-first, prune by incumbent.

use crate::problem::{Problem, Sense, Var};
use crate::simplex::{solve_inner, Options, Status};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a mixed-integer solve.
#[derive(Debug, Clone)]
pub struct MipSolution {
    /// Solve outcome; [`Status::IterationLimit`] doubles as the node-limit
    /// signal.
    pub status: Status,
    /// Optimal point with integer variables at integral values.
    pub x: Vec<f64>,
    /// Objective at `x` (NaN unless optimal).
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Branch-and-bound controls.
#[derive(Debug, Clone, Copy)]
pub struct MipOptions {
    /// LP sub-solver options.
    pub lp: Options,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Maximum nodes to explore before giving up.
    pub max_nodes: usize,
}

impl Default for MipOptions {
    fn default() -> Self {
        MipOptions { lp: Options::default(), int_tol: 1e-6, max_nodes: 100_000 }
    }
}

/// One open node: extra bounds layered on the base problem.
struct Node {
    /// `(var, new_lower, new_upper)` tightenings relative to the base.
    bounds: Vec<(Var, f64, f64)>,
    /// Relaxation bound of the parent (for best-first ordering).
    bound: f64,
}

/// Wrapper ordering nodes by bound (best-first for the problem's sense).
struct Ranked(Node, bool /* minimize */);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; for minimization we want the smallest
        // bound on top.
        let ord = self.0.bound.partial_cmp(&other.0.bound).unwrap_or(Ordering::Equal);
        if self.1 {
            ord.reverse()
        } else {
            ord
        }
    }
}

/// Solve a mixed-integer program with default options and no
/// observability.
pub fn solve_mip(p: &Problem) -> MipSolution {
    solve_mip_with(p, MipOptions::default(), &dust_obs::ObsHandle::disabled())
}

/// The single MIP entry point: solve with explicit options and record
/// solver metrics into `obs` — node counter and histogram plus one
/// `BranchAndBound` trace event. A disabled handle skips all recording,
/// preserving the untraced path exactly.
pub fn solve_mip_with(p: &Problem, opts: MipOptions, obs: &dust_obs::ObsHandle) -> MipSolution {
    let s = solve_mip_inner(p, opts);
    if obs.is_enabled() {
        obs.counter_inc("lp.bb.solves");
        obs.counter_add("lp.bb.nodes", s.nodes as u64);
        obs.observe("lp.bb.nodes", s.nodes as f64);
        obs.trace(dust_obs::TraceEvent::BranchAndBound { nodes: s.nodes as u64 });
    }
    s
}

fn solve_mip_inner(p: &Problem, opts: MipOptions) -> MipSolution {
    let ints = p.integer_vars();
    if ints.is_empty() {
        let s = solve_inner(p, opts.lp);
        return MipSolution { status: s.status, x: s.x, objective: s.objective, nodes: 1 };
    }
    let minimize = p.sense() == Sense::Minimize;
    let better = |a: f64, b: f64| if minimize { a < b } else { a > b };

    let mut heap: BinaryHeap<Ranked> = BinaryHeap::new();
    heap.push(Ranked(
        Node {
            bounds: Vec::new(),
            bound: if minimize { f64::NEG_INFINITY } else { f64::INFINITY },
        },
        minimize,
    ));
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let mut any_feasible_relaxation = false;

    while let Some(Ranked(node, _)) = heap.pop() {
        if nodes >= opts.max_nodes {
            return MipSolution {
                status: Status::IterationLimit,
                x: incumbent.as_ref().map(|(_, x)| x.clone()).unwrap_or_default(),
                objective: incumbent.as_ref().map_or(f64::NAN, |(o, _)| *o),
                nodes,
            };
        }
        nodes += 1;

        // prune by bound before solving (parent bound is valid here)
        if let Some((inc, _)) = &incumbent {
            if !better(node.bound, *inc) && node.bound.is_finite() {
                continue;
            }
        }

        // materialize the subproblem
        let mut sub = p.clone();
        let mut ok = true;
        for &(v, lo, hi) in &node.bounds {
            let d = &mut sub.vars[v.0];
            d.lower = d.lower.max(lo);
            d.upper = d.upper.min(hi);
            if d.lower > d.upper {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let relax = solve_inner(&sub, opts.lp);
        match relax.status {
            Status::Optimal => {}
            Status::Infeasible => continue,
            Status::Unbounded => {
                // Unbounded relaxation at the root means the MIP is
                // unbounded or infeasible; report unbounded.
                if node.bounds.is_empty() {
                    return MipSolution {
                        status: Status::Unbounded,
                        x: Vec::new(),
                        objective: f64::NAN,
                        nodes,
                    };
                }
                continue;
            }
            Status::IterationLimit => continue,
        }
        any_feasible_relaxation = true;

        // prune by the (now exact) relaxation bound
        if let Some((inc, _)) = &incumbent {
            if !better(relax.objective, *inc) {
                continue;
            }
        }

        // most fractional integer variable
        let mut branch: Option<(Var, f64)> = None;
        let mut best_frac = opts.int_tol;
        for &v in &ints {
            let val = relax.x[v.0];
            let frac = (val - val.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some((v, val));
            }
        }
        match branch {
            None => {
                // integral: candidate incumbent (round off tolerance noise)
                let mut x = relax.x.clone();
                for &v in &ints {
                    x[v.0] = x[v.0].round();
                }
                let obj = p.objective_value(&x);
                let accept = incumbent.as_ref().is_none_or(|(inc, _)| better(obj, *inc));
                if accept && p.is_feasible(&x, 1e-6) {
                    incumbent = Some((obj, x));
                }
            }
            Some((v, val)) => {
                let mut lo_bounds = node.bounds.clone();
                lo_bounds.push((v, f64::NEG_INFINITY, val.floor()));
                heap.push(Ranked(Node { bounds: lo_bounds, bound: relax.objective }, minimize));
                let mut hi_bounds = node.bounds;
                hi_bounds.push((v, val.ceil(), f64::INFINITY));
                heap.push(Ranked(Node { bounds: hi_bounds, bound: relax.objective }, minimize));
            }
        }
    }

    match incumbent {
        Some((obj, x)) => MipSolution { status: Status::Optimal, x, objective: obj, nodes },
        // No incumbent: either every relaxation was infeasible, or all
        // integral candidates were pruned — the MIP itself is infeasible.
        None => {
            let _ = any_feasible_relaxation;
            MipSolution { status: Status::Infeasible, x: Vec::new(), objective: f64::NAN, nodes }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 8a + 11b + 6c + 4d, weights 5,7,4,3 <= 14 → a,c,d? values:
        // optimal is b+c+d? 11+6+4=21 (w=14) vs a+b (w=12, 19) vs a+c+d (w=12, 18)
        let mut p = Problem::new();
        p.set_sense(Sense::Maximize);
        let a = p.add_bool(8.0);
        let b = p.add_bool(11.0);
        let c = p.add_bool(6.0);
        let d = p.add_bool(4.0);
        p.add_constraint(&[(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], Cmp::Le, 14.0);
        let s = solve_mip(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 21.0);
        assert_close(s.x[1], 1.0);
        assert_close(s.x[2], 1.0);
        assert_close(s.x[3], 1.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + y <= 4.5, x + 2y <= 4.5, integer
        // LP optimum (1.5, 1.5) obj 3; IP optimum obj 2 at... (1,1)=2, (2,0): 2*2=4<=4.5 ok, obj 2.
        // (0,2): ok, obj 2. So IP obj 2.
        let mut p = Problem::new();
        p.set_sense(Sense::Maximize);
        let x = p.add_int(0.0, 10.0, 1.0);
        let y = p.add_int(0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 2.0), (y, 1.0)], Cmp::Le, 4.5);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Cmp::Le, 4.5);
        let s = solve_mip(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut p = Problem::new();
        let x = p.add_nonneg(1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.5);
        let s = solve_mip(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 2.5);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 3i + c  s.t. i + c >= 2.5, i integer >= 0, c >= 0
        // i=0 → c=2.5 cost 2.5; i=1 → c=1.5 cost 4.5 → optimum 2.5
        let mut p = Problem::new();
        let i = p.add_int(0.0, 10.0, 3.0);
        let c = p.add_nonneg(1.0);
        p.add_constraint(&[(i, 1.0), (c, 1.0)], Cmp::Ge, 2.5);
        let s = solve_mip(&p);
        assert_close(s.objective, 2.5);
        assert_close(s.x[0], 0.0);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 <= x <= 0.6, x integer → infeasible
        let mut p = Problem::new();
        let x = p.add_int(0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 0.4);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 0.6);
        assert_eq!(solve_mip(&p).status, Status::Infeasible);
    }

    #[test]
    fn equality_with_integers() {
        // 3x + 5y = 14, x,y >= 0 integer, min x + y → x=3,y=1
        let mut p = Problem::new();
        let x = p.add_int(0.0, 100.0, 1.0);
        let y = p.add_int(0.0, 100.0, 1.0);
        p.add_constraint(&[(x, 3.0), (y, 5.0)], Cmp::Eq, 14.0);
        let s = solve_mip(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn binary_assignment_problem() {
        // 2 tasks to 2 machines, costs [[1, 9], [9, 2]], each task exactly
        // one machine, each machine at most one task → diagonal, cost 3
        let mut p = Problem::new();
        let x: Vec<Vec<Var>> = (0..2)
            .map(|i| (0..2).map(|j| p.add_bool([[1.0, 9.0], [9.0, 2.0]][i][j])).collect())
            .collect();
        for row in &x {
            p.add_constraint(&[(row[0], 1.0), (row[1], 1.0)], Cmp::Eq, 1.0);
        }
        for (&a, &b) in x[0].iter().zip(&x[1]) {
            p.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        }
        let s = solve_mip(&p);
        assert_close(s.objective, 3.0);
    }
}
