//! CPLEX LP-format export.
//!
//! Writes a [`Problem`] in the ubiquitous LP file format so any external
//! solver (Gurobi, CPLEX, HiGHS, glpsol, …) can cross-check our simplex —
//! the reproduction's answer to "did you really match what Gurobi would
//! say?". The format emitted is the conservative common subset all of
//! them parse.

use crate::problem::{Cmp, Problem, Sense};
use std::fmt::Write as _;

/// Render `p` as an LP-format document. Variables are named `x0, x1, …`
/// in declaration order; constraints `c0, c1, …`.
pub fn to_lp_format(p: &Problem) -> String {
    let mut out = String::new();
    out.push_str(match p.sense() {
        Sense::Minimize => "Minimize\n",
        Sense::Maximize => "Maximize\n",
    });
    out.push_str(" obj:");
    let mut wrote_term = false;
    for i in 0..p.num_vars() {
        let c = p.var_def(crate::problem::Var(i)).cost;
        if c != 0.0 {
            let _ = write!(out, "{}", term(c, i, wrote_term));
            wrote_term = true;
        }
    }
    if !wrote_term {
        out.push_str(" 0 x0");
    }
    out.push('\n');

    out.push_str("Subject To\n");
    for (ci, c) in p.constraints.iter().enumerate() {
        let _ = write!(out, " c{ci}:");
        let mut first = true;
        for &(v, coef) in &c.terms {
            let _ = write!(out, "{}", term(coef, v.0, !first));
            first = false;
        }
        if first {
            out.push_str(" 0 x0");
        }
        let op = match c.cmp {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        };
        let _ = writeln!(out, " {op} {}", num(c.rhs));
    }

    out.push_str("Bounds\n");
    for i in 0..p.num_vars() {
        let d = p.var_def(crate::problem::Var(i));
        match (d.lower.is_finite(), d.upper.is_finite()) {
            (true, true) => {
                let _ = writeln!(out, " {} <= x{i} <= {}", num(d.lower), num(d.upper));
            }
            (true, false) => {
                // LP format defaults to lower bound 0; only non-zero needs
                // writing, but being explicit is harmless and clearer.
                let _ = writeln!(out, " x{i} >= {}", num(d.lower));
            }
            (false, true) => {
                let _ = writeln!(out, " -inf <= x{i} <= {}", num(d.upper));
            }
            (false, false) => {
                let _ = writeln!(out, " x{i} free");
            }
        }
    }

    let ints = p.integer_vars();
    if !ints.is_empty() {
        out.push_str("General\n");
        for v in ints {
            let _ = writeln!(out, " x{}", v.0);
        }
    }
    out.push_str("End\n");
    out
}

/// Format one linear term with sign handling: ` + 2.5 x3` / ` - x0`.
fn term(coef: f64, var: usize, follow: bool) -> String {
    let sign = if coef < 0.0 {
        "-"
    } else if follow {
        "+"
    } else {
        ""
    };
    let mag = coef.abs();
    if (mag - 1.0).abs() < 1e-15 {
        format!(" {sign} x{var}").replace("  ", " ")
    } else {
        format!(" {sign} {} x{var}", num(mag)).replace("  ", " ")
    }
}

/// Minimal-clutter numeric formatting (no trailing zeros, full precision
/// when needed).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn textbook_lp_renders() {
        let mut p = Problem::new();
        p.set_sense(Sense::Maximize);
        let x = p.add_nonneg(3.0);
        let y = p.add_nonneg(5.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let lp = to_lp_format(&p);
        assert!(lp.starts_with("Maximize\n obj: 3 x0 + 5 x1\n"));
        assert!(lp.contains(" c0: x0 <= 4\n"));
        assert!(lp.contains(" c1: 2 x1 <= 12\n"));
        assert!(lp.contains(" c2: 3 x0 + 2 x1 <= 18\n"));
        assert!(lp.contains(" x0 >= 0\n"));
        assert!(lp.ends_with("End\n"));
        assert!(!lp.contains("General"), "no integer section for pure LPs");
    }

    #[test]
    fn negative_coefficients_and_equalities() {
        let mut p = Problem::new();
        let x = p.add_nonneg(1.0);
        let y = p.add_nonneg(-2.5);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 1.5);
        p.add_constraint(&[(x, -4.0)], Cmp::Ge, -8.0);
        let lp = to_lp_format(&p);
        assert!(lp.starts_with("Minimize\n obj: x0 - 2.5 x1\n"), "{lp}");
        assert!(lp.contains(" c0: x0 - x1 = 1.5\n"), "{lp}");
        assert!(lp.contains(" c1: - 4 x0 >= -8\n"), "{lp}");
    }

    #[test]
    fn bounds_variants() {
        let mut p = Problem::new();
        let _a = p.add_var(0.0, 7.0, 1.0);
        let _b = p.add_var(2.0, f64::INFINITY, 1.0);
        let _c = p.add_var(f64::NEG_INFINITY, 3.0, 1.0);
        let _d = p.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let lp = to_lp_format(&p);
        assert!(lp.contains(" 0 <= x0 <= 7\n"));
        assert!(lp.contains(" x1 >= 2\n"));
        assert!(lp.contains(" -inf <= x2 <= 3\n"));
        assert!(lp.contains(" x3 free\n"));
    }

    #[test]
    fn integer_section_lists_int_vars() {
        let mut p = Problem::new();
        let _x = p.add_nonneg(1.0);
        let _b = p.add_bool(2.0);
        let _i = p.add_int(0.0, 9.0, 3.0);
        let lp = to_lp_format(&p);
        let general = lp.split("General\n").nth(1).expect("has General section");
        assert!(general.contains(" x1\n") && general.contains(" x2\n"));
        assert!(!general.contains(" x0\n"));
    }

    #[test]
    fn empty_objective_still_valid() {
        let mut p = Problem::new();
        let x = p.add_nonneg(0.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 5.0);
        let lp = to_lp_format(&p);
        assert!(lp.contains("obj: 0 x0"), "placeholder objective required: {lp}");
    }
}
