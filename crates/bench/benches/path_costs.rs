//! Ablation 1 (DESIGN.md): paper-faithful exhaustive path enumeration vs
//! the hop-bounded Bellman–Ford DP for building `T_rmin` cost matrices.

use dust::prelude::*;
use dust_bench::harness::Runner;

fn main() {
    let group = Runner::group("t_rmin-matrix");
    for &(k, max_hop) in &[(4usize, 6usize), (4, 8), (8, 4), (8, 6)] {
        let ft = FatTree::with_default_links(k);
        let edges = ft.tier_nodes(Tier::Edge);
        // a representative busy/candidate split: 4 sources, 8 destinations
        let sources: Vec<NodeId> = edges.iter().copied().take(4).collect();
        let dests: Vec<NodeId> = edges.iter().copied().rev().take(8).collect();
        let data = vec![100.0; sources.len()];
        let label = format!("k{k}-hop{max_hop}");
        group.bench(&format!("enumerate/{label}"), || {
            CostMatrix::build(
                &ft.graph,
                &sources,
                &dests,
                &data,
                Some(max_hop),
                PathEngine::Enumerate,
            )
        });
        group.bench(&format!("dp/{label}"), || {
            CostMatrix::build(
                &ft.graph,
                &sources,
                &dests,
                &data,
                Some(max_hop),
                PathEngine::HopBoundedDp,
            )
        });
    }
}
