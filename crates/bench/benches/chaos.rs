//! Lossy-control-plane benchmarks: what a degrading message transport
//! costs in wall-clock (retries and duplicate deliveries mean more
//! events per simulated second) and in protocol outcome — transfers
//! applied and time-to-first-offload versus loss rate.

use dust::prelude::*;
use dust_bench::harness::Runner;

fn main() {
    let group = Runner::group("chaos");
    for &loss in &[0.0, 0.1, 0.2, 0.4] {
        group.bench(&format!("testbed-60s/loss-{}", (loss * 100.0) as u32), || {
            chaos_run(loss, 60_000, 7)
        });
    }

    // outcome table: the protocol-quality side of the same sweep
    println!("\n## chaos outcomes (120 simulated seconds, seed 7)");
    println!(
        "{:<8} {:>10} {:>6} {:>9} {:>10} {:>15}",
        "loss%", "transfers", "reps", "retries", "abandoned", "first-offload"
    );
    for r in chaos_ladder(&[0.0, 0.05, 0.1, 0.2, 0.4], 120_000, 7) {
        println!(
            "{:<8} {:>10} {:>6} {:>9} {:>10} {:>15}",
            format!("{:.0}", r.loss * 100.0),
            r.transfers,
            r.replicas,
            r.offer_retries,
            r.offers_abandoned,
            r.first_transfer_ms.map_or("never".into(), |ms| format!("{:.1}s", ms as f64 / 1e3)),
        );
        assert_eq!(r.agents_present, r.agents_expected, "conservation broke in a bench run");
    }
}
