//! Parallel `CostEngine` scaling: building the full busy×candidate
//! `T_rmin` matrix of an 8-k fat-tree with exhaustive path enumeration,
//! single-threaded vs multi-threaded.
//!
//! Prints the measured speedup per thread count and asserts that every
//! thread count produces a bit-identical matrix. On hosts with ≥4 cores
//! the ≥4-thread run must be at least 2× faster than one thread; on
//! smaller hosts (CI containers are often pinned to one core) the ratio
//! is reported but not enforced — there is no parallelism to win.

use dust::prelude::*;
use dust_bench::harness::{fmt_duration, time};

fn main() {
    let ft = FatTree::with_default_links(8);
    let edges = ft.tier_nodes(Tier::Edge);
    // Half the edge tier busy, the other half candidates: the widest
    // realistic matrix shape for this topology.
    let sources: Vec<NodeId> = edges.iter().copied().take(edges.len() / 2).collect();
    let dests: Vec<NodeId> = edges.iter().copied().skip(edges.len() / 2).collect();
    let data = vec![100.0; sources.len()];
    let max_hop = Some(6);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "## cost-engine (8-k fat-tree, enumerate, {} x {} matrix, {cores} core(s))",
        sources.len(),
        dests.len()
    );

    let build = |threads: usize| {
        // a fresh engine per call: timing must not hit the row cache
        let engine = CostEngine::with_threads(threads);
        engine.build_matrix(&ft.graph, &sources, &dests, &data, max_hop, PathEngine::Enumerate)
    };

    let reference = build(1);
    let base = time(|| build(1));
    println!("{:<52} {:>12}", "cost-engine/threads-1", fmt_duration(base));

    let mut counts = vec![2usize, 4];
    if cores > 4 {
        counts.push(cores);
    }
    for &threads in &counts {
        let m = build(threads);
        assert_eq!(m.t_rmin.len(), reference.t_rmin.len());
        for (a, b) in m.t_rmin.iter().zip(&reference.t_rmin) {
            assert_eq!(a.to_bits(), b.to_bits(), "parallel matrix must be bit-identical");
        }
        let t = time(|| build(threads));
        let speedup = base.as_secs_f64() / t.as_secs_f64();
        println!(
            "{:<52} {:>12}   speedup {speedup:.2}x",
            format!("cost-engine/threads-{threads}"),
            fmt_duration(t)
        );
        if threads >= 4 && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "expected >=2x speedup at {threads} threads on {cores} cores, got {speedup:.2}x"
            );
        }
    }
}
