//! Ablation 2 (DESIGN.md): the specialized transportation solver vs the
//! general two-phase simplex on identical placement-shaped instances.
//!
//! Besides wall-clock, the run reports *pivot-count histograms* over a
//! seed sweep via the observability layer — the hardware-independent
//! work metric behind the timing, so a solver regression shows up even
//! on a noisy machine.

use dust::lp::{solve, solve_with, Cmp, Options, Problem, TransportProblem};
use dust::obs::ObsHandle;
use dust::prelude::SplitMix64;
use dust_bench::harness::Runner;

/// A random placement-shaped transportation instance: m sources with
/// supplies, n sinks with generous capacity, uniform random costs.
fn random_instance(m: usize, n: usize, seed: u64) -> TransportProblem {
    let mut rng = SplitMix64::new(seed);
    let supply: Vec<f64> = (0..m).map(|_| rng.range_f64(1.0, 20.0)).collect();
    let total: f64 = supply.iter().sum();
    let capacity: Vec<f64> =
        (0..n).map(|_| rng.range_f64(0.5, 2.0) * total / n as f64 * 1.5).collect();
    let cost: Vec<f64> = (0..m * n).map(|_| rng.range_f64(0.01, 10.0)).collect();
    TransportProblem::new(supply, capacity, cost)
}

fn simplex_equivalent(tp: &TransportProblem) -> Problem {
    let (m, n) = (tp.supply.len(), tp.capacity.len());
    let mut p = Problem::new();
    let vars: Vec<_> = (0..m * n).map(|i| p.add_nonneg(tp.cost[i])).collect();
    for i in 0..m {
        let terms: Vec<_> = (0..n).map(|j| (vars[i * n + j], 1.0)).collect();
        p.add_constraint(&terms, Cmp::Eq, tp.supply[i]);
    }
    for j in 0..n {
        let terms: Vec<_> = (0..m).map(|i| (vars[i * n + j], 1.0)).collect();
        p.add_constraint(&terms, Cmp::Le, tp.capacity[j]);
    }
    p
}

/// Solve 32 seeded instances of one size with both backends, recording
/// pivot counts into a shared metrics registry, and print the p50/p95
/// of each backend's pivot histogram.
fn pivot_census(m: usize, n: usize) {
    let obs = ObsHandle::recording(0);
    for seed in 0..32u64 {
        let tp = random_instance(m, n, seed * 7 + 1);
        let lp = simplex_equivalent(&tp);
        tp.solve_with(&obs);
        solve_with(&lp, Options::default(), &obs);
    }
    let metrics = obs.metrics().expect("recording handle");
    for name in ["lp.transport.pivots", "lp.simplex.pivots"] {
        let h = metrics.histogram(name).expect("recorded histogram");
        println!(
            "{:<52} p50 {:>6.0}  p95 {:>6.0}  max {:>6.0}",
            format!("lp-backends/pivots/{name}/{m}x{n}"),
            h.quantile(0.5).unwrap_or(0.0),
            h.quantile(0.95).unwrap_or(0.0),
            h.max().unwrap_or(0.0),
        );
    }
}

fn main() {
    let group = Runner::group("lp-backends");
    for &(m, n) in &[(4usize, 8usize), (10, 20), (25, 50)] {
        let tp = random_instance(m, n, 42);
        let lp = simplex_equivalent(&tp);
        group.bench(&format!("transportation/{m}x{n}"), || tp.solve());
        group.bench(&format!("simplex/{m}x{n}"), || solve(&lp));
        pivot_census(m, n);
    }
}
