//! Ablation 3 (DESIGN.md): Algorithm 1's one-hop restriction vs the
//! generalized h-hop heuristic — runtime cost of extra reach (its HFR
//! benefit is reported by `experiments fig11`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dust::prelude::*;
use dust_bench::{experiment_config, experiment_params};

fn bench_heuristic_reach(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic-reach");
    group.sample_size(10);
    for &k in &[8usize, 16] {
        let ft = FatTree::with_default_links(k);
        let cfg = experiment_config().with_engine(PathEngine::HopBoundedDp);
        let nmdb = random_nmdb(&ft.graph, &cfg, &experiment_params(), 3);
        for hops in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("hops-{hops}"), k),
                &nmdb,
                |b, db| b.iter(|| std::hint::black_box(heuristic_with_hops(db, &cfg, hops))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_heuristic_reach);
criterion_main!(benches);
