//! Ablation 3 (DESIGN.md): Algorithm 1's one-hop restriction vs the
//! generalized h-hop heuristic — runtime cost of extra reach (its HFR
//! benefit is reported by `experiments fig11`).

use dust::prelude::*;
use dust_bench::harness::Runner;
use dust_bench::{experiment_config, experiment_params};

fn main() {
    let group = Runner::group("heuristic-reach");
    for &k in &[8usize, 16] {
        let ft = FatTree::with_default_links(k);
        let cfg = experiment_config().with_engine(PathEngine::HopBoundedDp);
        let nmdb = random_nmdb(&ft.graph, &cfg, &experiment_params(), 3);
        for hops in [1usize, 2, 4] {
            group.bench(&format!("hops-{hops}/{k}"), || heuristic_with_hops(&nmdb, &cfg, hops));
        }
    }
}
