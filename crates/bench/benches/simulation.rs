//! End-to-end simulator benchmarks: cost of a full testbed run (Fig. 6
//! scenario) and of the many-busy-node fleet scenario — the wall-clock
//! price of one simulated minute of DUST.

use dust::prelude::*;
use dust::sim::scenarios;
use dust_bench::harness::Runner;

fn main() {
    let group = Runner::group("simulation");
    for &duration in &[30_000u64, 60_000] {
        group.bench(&format!("fig6-pair/{}", duration / 1000), || fig6_contrast(duration, 7));
    }
    group.bench("fleet-4k-60s", || scenarios::fleet(4, 60_000, 7));
}
