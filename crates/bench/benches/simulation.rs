//! End-to-end simulator benchmarks: cost of a full testbed run (Fig. 6
//! scenario) and of the many-busy-node fleet scenario — the wall-clock
//! price of one simulated minute of DUST.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dust::prelude::*;
use dust::sim::scenarios;

fn bench_testbed(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for &duration in &[30_000u64, 60_000] {
        group.bench_with_input(
            BenchmarkId::new("fig6-pair", duration / 1000),
            &duration,
            |b, &d| b.iter(|| std::hint::black_box(fig6(d, 7))),
        );
    }
    group.bench_function("fleet-4k-60s", |b| {
        b.iter(|| std::hint::black_box(scenarios::fleet(4, 60_000, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_testbed);
criterion_main!(benches);
