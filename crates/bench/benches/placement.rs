//! End-to-end placement benchmark: the full optimization round
//! (role classification → `T_rmin` matrix → LP → route extraction) on
//! random fat-tree states, per LP backend and per routing engine.

use dust::prelude::*;
use dust_bench::harness::Runner;
use dust_bench::{experiment_config, experiment_params};

fn main() {
    let group = Runner::group("placement-round");
    for &k in &[4usize, 8] {
        let ft = FatTree::with_default_links(k);
        let cfg_dp =
            experiment_config().with_engine(PathEngine::HopBoundedDp).with_max_hop(Some(6));
        let nmdb = random_nmdb(&ft.graph, &cfg_dp, &experiment_params(), 7);
        group.bench(&format!("transportation-dp/{k}"), || {
            optimize(&nmdb, &cfg_dp, SolverBackend::Transportation)
        });
        group
            .bench(&format!("simplex-dp/{k}"), || optimize(&nmdb, &cfg_dp, SolverBackend::Simplex));
        let cfg_enum = cfg_dp.with_engine(PathEngine::Enumerate);
        group.bench(&format!("transportation-enum/{k}"), || {
            optimize(&nmdb, &cfg_enum, SolverBackend::Transportation)
        });
    }
}
