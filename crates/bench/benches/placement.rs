//! End-to-end placement benchmark: the full optimization round
//! (role classification → `T_rmin` matrix → LP → route extraction) on
//! random fat-tree states, per LP backend and per routing engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dust::prelude::*;
use dust_bench::{experiment_config, experiment_params};

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement-round");
    group.sample_size(10);
    for &k in &[4usize, 8] {
        let ft = FatTree::with_default_links(k);
        let cfg_dp = experiment_config().with_engine(PathEngine::HopBoundedDp).with_max_hop(Some(6));
        let nmdb = random_nmdb(&ft.graph, &cfg_dp, &experiment_params(), 7);
        group.bench_with_input(BenchmarkId::new("transportation-dp", k), &nmdb, |b, db| {
            b.iter(|| std::hint::black_box(optimize(db, &cfg_dp, SolverBackend::Transportation)))
        });
        group.bench_with_input(BenchmarkId::new("simplex-dp", k), &nmdb, |b, db| {
            b.iter(|| std::hint::black_box(optimize(db, &cfg_dp, SolverBackend::Simplex)))
        });
        let cfg_enum = cfg_dp.with_engine(PathEngine::Enumerate);
        group.bench_with_input(BenchmarkId::new("transportation-enum", k), &nmdb, |b, db| {
            b.iter(|| std::hint::black_box(optimize(db, &cfg_enum, SolverBackend::Transportation)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
