//! Telemetry substrate micro-benchmarks: Gorilla compression throughput
//! (the SmartNIC in-situ compression of §III-A), TSDB ingest/query, and
//! federated aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dust::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn steady_series(n: usize) -> Series {
    let mut s = Series::default();
    for i in 0..n as u64 {
        s.push(i * 1000, 55.0 + (i % 7) as f64 * 0.25);
    }
    s
}

fn noisy_series(n: usize, seed: u64) -> Series {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Series::default();
    let mut t = 0u64;
    for _ in 0..n {
        t += rng.gen_range(800..1200);
        s.push(t, rng.gen_range(0.0..100.0));
    }
    s
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("gorilla");
    for &n in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        let steady = steady_series(n);
        let noisy = noisy_series(n, 9);
        group.bench_with_input(BenchmarkId::new("compress-steady", n), &steady, |b, s| {
            b.iter(|| std::hint::black_box(compress(s)))
        });
        group.bench_with_input(BenchmarkId::new("compress-noisy", n), &noisy, |b, s| {
            b.iter(|| std::hint::black_box(compress(s)))
        });
        let block = compress(&noisy);
        group.bench_with_input(BenchmarkId::new("decompress-noisy", n), &block, |b, blk| {
            b.iter(|| std::hint::black_box(decompress(blk)))
        });
    }
    group.finish();
}

fn bench_tsdb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsdb");
    group.bench_function("append-10k", |b| {
        b.iter(|| {
            let mut db = Tsdb::new();
            for t in 0..10_000u64 {
                db.append("cpu", t, t as f64);
            }
            std::hint::black_box(db)
        })
    });
    let mut db = Tsdb::new();
    for t in 0..100_000u64 {
        db.append("cpu", t, t as f64);
    }
    group.bench_function("range-query-100k", |b| {
        b.iter(|| std::hint::black_box(db.series("cpu").unwrap().range(25_000, 75_000).len()))
    });
    group.bench_function("downsample-100k", |b| {
        b.iter(|| std::hint::black_box(db.series("cpu").unwrap().downsample(1000)))
    });
    group.finish();
}

fn bench_federation(c: &mut Criterion) {
    let mut fed = Federation::new();
    for n in 0..32u32 {
        let db = fed.store_mut(NodeId(n));
        for t in 0..2_000u64 {
            db.append("device-cpu", t * 1000, (t % 97) as f64);
        }
    }
    c.bench_function("federated-mean-32nodes", |b| {
        b.iter(|| {
            std::hint::black_box(fed.query(
                "device-cpu",
                0,
                2_000_000,
                60_000,
                dust::telemetry::Aggregation::Mean,
            ))
        })
    });
}

criterion_group!(benches, bench_compression, bench_tsdb, bench_federation);
criterion_main!(benches);
