//! Telemetry substrate micro-benchmarks: Gorilla compression throughput
//! (the SmartNIC in-situ compression of §III-A), TSDB ingest/query, and
//! federated aggregation.

use dust::prelude::*;
use dust_bench::harness::Runner;

fn steady_series(n: usize) -> Series {
    let mut s = Series::default();
    for i in 0..n as u64 {
        s.push(i * 1000, 55.0 + (i % 7) as f64 * 0.25);
    }
    s
}

fn noisy_series(n: usize, seed: u64) -> Series {
    let mut rng = SplitMix64::new(seed);
    let mut s = Series::default();
    let mut t = 0u64;
    for _ in 0..n {
        t += rng.range_u64(800, 1200);
        s.push(t, rng.range_f64(0.0, 100.0));
    }
    s
}

fn bench_compression() {
    let group = Runner::group("gorilla");
    for &n in &[1_000usize, 10_000] {
        let steady = steady_series(n);
        let noisy = noisy_series(n, 9);
        group.bench(&format!("compress-steady/{n}"), || compress(&steady));
        group.bench(&format!("compress-noisy/{n}"), || compress(&noisy));
        let block = compress(&noisy);
        group.bench(&format!("decompress-noisy/{n}"), || decompress(&block));
    }
}

fn bench_tsdb() {
    let group = Runner::group("tsdb");
    group.bench("append-10k", || {
        let mut db = Tsdb::new();
        for t in 0..10_000u64 {
            db.append("cpu", t, t as f64);
        }
        db
    });
    let mut db = Tsdb::new();
    for t in 0..100_000u64 {
        db.append("cpu", t, t as f64);
    }
    group.bench("range-query-100k", || db.series("cpu").unwrap().range(25_000, 75_000).len());
    group.bench("downsample-100k", || db.series("cpu").unwrap().downsample(1000));
}

fn bench_federation() {
    let mut fed = Federation::new();
    for n in 0..32u32 {
        let db = fed.store_mut(NodeId(n));
        for t in 0..2_000u64 {
            db.append("device-cpu", t * 1000, (t % 97) as f64);
        }
    }
    let group = Runner::group("federation");
    group.bench("federated-mean-32nodes", || {
        fed.query("device-cpu", 0, 2_000_000, 60_000, dust::telemetry::Aggregation::Mean)
    });
}

fn main() {
    bench_compression();
    bench_tsdb();
    bench_federation();
}
