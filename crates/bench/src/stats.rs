//! Small statistics helpers for the experiment harness: log-log
//! least-squares (power-law) fits used to check the paper's quantitative
//! shape claims (e.g. Fig. 11a's "negative power function of ~(−0.5)"
//! for HFR vs scale), plus histogram-backed quantiles.
//!
//! Quantiles reuse the observability layer's mergeable log-scale
//! [`Histogram`] instead of a private sort-based percentile: the bench
//! harness then reports the *same* statistic the runtime metrics report,
//! and per-shard histograms from parallel experiment runs merge exactly.

use dust::obs::Histogram;

/// Least-squares fit of `y = a·x^b` via regression on `ln y = ln a + b·ln x`.
///
/// Returns `(a, b)`. Points with non-positive coordinates are skipped
/// (they have no logarithm); `None` when fewer than two usable points
/// remain or the x-values are all equal.
pub fn power_law_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let ln_a = (sy - b * sx) / n;
    Some((ln_a.exp(), b))
}

/// Coefficient of determination (R²) of a power-law fit on the log-log
/// points. `None` under the same conditions as [`power_law_fit`].
pub fn power_law_r2(points: &[(f64, f64)]) -> Option<f64> {
    let (a, b) = power_law_fit(points)?;
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / logs.len() as f64;
    let ss_tot: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|(x, y)| {
            let pred = a.ln() + b * x;
            (y - pred).powi(2)
        })
        .sum();
    if ss_tot < 1e-15 {
        return Some(1.0);
    }
    Some(1.0 - ss_res / ss_tot)
}

/// Fold a slice of samples into the observability layer's mergeable
/// log-scale [`Histogram`] (NaN samples are ignored, like the runtime).
pub fn histogram_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Histogram-estimated quantile (`q` in `[0, 1]`) of a slice.
///
/// Bucket-resolution estimate — within one log-scale bucket (≤ 25 %
/// relative error) of the exact order statistic, exact at the observed
/// extremes. `None` on an empty slice or when every sample is NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    histogram_of(values).quantile(q)
}

/// Sample geometric mean of positive values (useful for averaging
/// normalized timing ratios). Non-positive values are skipped.
pub fn geomean(values: &[f64]) -> Option<f64> {
    let logs: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).map(f64::ln).collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust::prelude::SplitMix64;

    #[test]
    fn exact_power_law_recovered() {
        // y = 3 x^-0.5
        let pts: Vec<(f64, f64)> =
            [1.0f64, 4.0, 16.0, 64.0].iter().map(|&x| (x, 3.0 * x.powf(-0.5))).collect();
        let (a, b) = power_law_fit(&pts).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b + 0.5).abs() < 1e-9);
        assert!((power_law_r2(&pts).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_close() {
        let pts = [(10.0, 9.5), (100.0, 3.1), (1000.0, 1.05), (10000.0, 0.29)];
        let (_, b) = power_law_fit(&pts).unwrap();
        assert!((b + 0.5).abs() < 0.05, "exponent {b}");
        assert!(power_law_r2(&pts).unwrap() > 0.99);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(power_law_fit(&[]).is_none());
        assert!(power_law_fit(&[(1.0, 2.0)]).is_none());
        assert!(power_law_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none()); // same x
        assert!(power_law_fit(&[(0.0, 2.0), (-1.0, 3.0)]).is_none()); // no logs
    }

    /// Seeded property test: the histogram-backed quantile tracks the
    /// exact sorted order statistic within one log-bucket (25 %) at
    /// every decile, and is exact at both extremes.
    #[test]
    fn quantile_tracks_exact_order_statistic() {
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(seed * 101 + 1);
            let values: Vec<f64> = (0..500).map(|_| rng.range_f64(0.5, 5_000.0)).collect();
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for dec in 0..=10 {
                let q = dec as f64 / 10.0;
                let exact = sorted[((q * (sorted.len() - 1) as f64).round()) as usize];
                let est = quantile(&values, q).unwrap();
                assert!(
                    est >= exact / 1.25 - 1e-9 && est <= exact * 1.25 + 1e-9,
                    "seed {seed} q {q}: estimate {est} vs exact {exact}"
                );
            }
            assert_eq!(quantile(&values, 0.0), Some(sorted[0]), "seed {seed}: min not exact");
            assert_eq!(
                quantile(&values, 1.0),
                Some(sorted[sorted.len() - 1]),
                "seed {seed}: max not exact"
            );
        }
    }

    #[test]
    fn quantile_degenerate_inputs() {
        assert!(quantile(&[], 0.5).is_none());
        assert!(quantile(&[f64::NAN], 0.5).is_none());
        assert_eq!(quantile(&[7.0], 0.5).map(f64::round), Some(7.0));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0, -1.0]).unwrap() - 4.0).abs() < 1e-12); // skips <= 0
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[-1.0]).is_none());
    }
}
