//! Shared experiment machinery for the figure-regeneration harness.
//!
//! The `experiments` binary (one subcommand per paper figure) and the
//! micro-benches under `benches/` both build on these helpers: timing,
//! aligned table printing, and the experiment configurations that
//! mirror §V.

use dust::prelude::*;
use std::time::{Duration, Instant};

pub mod baseline;
pub mod figures;
pub mod harness;
pub mod stats;

/// Default master seed printed in every table header; every experiment is
/// bit-for-bit reproducible from it.
pub const DEFAULT_SEED: u64 = 20_240_527;

/// Time one closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Arithmetic mean of a slice of durations, in seconds.
pub fn mean_secs(ds: &[Duration]) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    ds.iter().map(Duration::as_secs_f64).sum::<f64>() / ds.len() as f64
}

/// A plain-text table that prints aligned columns (the harness output that
/// EXPERIMENTS.md embeds).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// The thresholds used for the Monte-Carlo placement experiments
/// (Figs. 7–12). Tighter than [`DustConfig::paper_defaults`] so the
/// one-hop heuristic actually fails at small scale, reproducing the
/// Fig. 9/11a regime where HFR starts high and decays with network size.
pub fn experiment_config() -> DustConfig {
    DustConfig::paper_defaults().with_thresholds(80.0, 32.0, 5.0)
}

/// Scenario distribution shared by the placement experiments.
pub fn experiment_params() -> ScenarioParams {
    ScenarioParams::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header", "x"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["10".into(), "222222".into(), "33".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn experiment_config_valid_with_low_delta() {
        let c = experiment_config();
        c.validate().unwrap();
        // deliberately in the regime where infeasibility is possible
        assert!((c.delta_io() - 1.35).abs() < 1e-9);
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        assert_eq!(mean_secs(&[]), 0.0);
        let m = mean_secs(&[Duration::from_millis(10), Duration::from_millis(30)]);
        assert!((m - 0.02).abs() < 1e-9);
    }
}
