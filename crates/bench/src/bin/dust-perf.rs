//! `dust-perf` — emit and compare the committed perf baseline.
//!
//! ```sh
//! dust-perf emit --out BENCH_seed.json       # measure, write baseline
//! dust-perf compare --baseline BENCH_seed.json --candidate candidate.json
//! ```
//!
//! `emit` runs each named scenario on both simulation cores and records
//! deterministic shape fields plus wall-clock throughput and the
//! event-over-tick speedup (see `dust_bench::baseline` for the format
//! and the comparison rules). `compare` exits 1 with one line per
//! failure; CI runs `emit` on the candidate tree and compares it against
//! the committed `BENCH_seed.json`.

use dust::prelude::*;
use dust_bench::baseline::{BenchBaseline, ScenarioPerf, BASELINE_VERSION};
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// Samples per measurement; the fastest is kept (external noise only
/// ever slows a run down).
const SAMPLES: usize = 3;

fn usage() -> ! {
    eprintln!(
        "usage:\n  dust-perf emit [--out PATH]\n  dust-perf compare --baseline PATH \
         --candidate PATH [--tolerance F]"
    );
    std::process::exit(2)
}

fn federation_points(r: &SimReport) -> u64 {
    r.federation
        .nodes()
        .iter()
        .filter_map(|n| r.federation.store(*n))
        .map(|db| db.point_count() as u64)
        .sum()
}

/// Phases kept in `phase_self_ms` — the profiler's aggregated scope
/// vocabulary is small, but the attribution only ever names the top
/// regressors, so the record stays readable.
const PHASE_CAP: usize = 8;

/// Render the profiled run's per-phase self-time as the baseline's
/// `name:ms;…` string (self-time descending, zero-time phases dropped).
fn phase_string(obs: &ObsHandle) -> String {
    let Some(profile) = obs.profile() else { return String::new() };
    profile
        .phase_self_ns()
        .iter()
        .filter(|(_, ns)| *ns > 0)
        .take(PHASE_CAP)
        .map(|(name, ns)| format!("{name}:{:.2}", *ns as f64 / 1e6))
        .collect::<Vec<_>>()
        .join(";")
}

/// Fastest wall-clock for a fresh run of `mk(engine, …)`, plus the
/// report of the fastest run. Timing samples run unobserved — the
/// profiled run happens separately so instrumentation never taxes the
/// recorded throughput.
fn best_run(
    mk: &dyn Fn(EngineKind, ObsHandle) -> Simulation,
    engine: EngineKind,
) -> (Duration, SimReport) {
    let mut best: Option<(Duration, SimReport)> = None;
    for _ in 0..SAMPLES {
        let mut sim = mk(engine, ObsHandle::disabled());
        let t = Instant::now();
        let r = sim.run();
        let d = t.elapsed();
        if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
            best = Some((d, r));
        }
    }
    best.expect("SAMPLES > 0")
}

fn measure(
    name: &str,
    min_speedup: f64,
    mk: &dyn Fn(EngineKind, ObsHandle) -> Simulation,
) -> ScenarioPerf {
    eprintln!("measuring {name} ...");
    let (event_wall, report) = best_run(mk, EngineKind::Event);
    let (tick_wall, tick_report) = best_run(mk, EngineKind::Tick);
    assert_eq!(
        report.events_processed, tick_report.events_processed,
        "{name}: cores disagree on event count — determinism bug"
    );
    // one extra profiled run on the shipping (event) core attributes the
    // throughput numbers to phases; its wall-clock is never recorded
    let obs = ObsHandle::recording(0);
    obs.enable_profiling();
    let _ = mk(EngineKind::Event, obs.clone()).run();
    let secs = event_wall.as_secs_f64();
    ScenarioPerf {
        name: name.to_string(),
        nodes: report.federation.nodes().len() as u64,
        events_processed: report.events_processed,
        peak_queue_len: report.peak_queue_len as u64,
        federation_points: federation_points(&report),
        events_per_sec: report.events_processed as f64 / secs,
        rounds_per_sec: report.placement_rounds as f64 / secs,
        speedup_vs_tick: tick_wall.as_secs_f64() / secs,
        min_speedup,
        objective_gap_pct: 0.0,
        max_gap_pct: 0.0,
        speedup_vs_exact: 0.0,
        min_exact_speedup: 0.0,
        warm_speedup_vs_cold: 0.0,
        min_warm_speedup: 0.0,
        phase_self_ms: phase_string(&obs),
    }
}

/// Measure the POP-style partitioned placement against the exact
/// whole-problem solve on a `k`-port fat-tree with seeded random states.
/// Both paths share one memoized `CostEngine`, so the comparison is
/// solver time over identical cached `T_rmin` pricing — the quantity the
/// `min_exact_speedup` gate protects. The objective gap is fully
/// deterministic (seeded states, seeded row split).
fn measure_partition(
    name: &str,
    k: usize,
    parts: usize,
    max_gap_pct: f64,
    min_exact_speedup: f64,
) -> ScenarioPerf {
    eprintln!("measuring {name} ...");
    // hop-bounded DP pricing: exhaustive enumeration is exponential at
    // this scale, and the gate targets solver time, not routing time
    let cfg = DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp);
    let graph = FatTree::with_default_links(k).graph;
    let nodes = graph.node_count() as u64;
    let nmdb = random_nmdb(&graph, &cfg, &ScenarioParams::default(), 7);
    let mut engine = CostEngine::new();
    let solve = |parts_opt: Option<NonZeroUsize>| -> Placement {
        PlacementRequest::new(&nmdb, &cfg)
            .engine(&engine)
            .partitions(parts_opt)
            .partition_seed(7)
            .run_lp()
            .expect("generated fat-tree instance is well-formed")
    };
    let best = |parts_opt: Option<NonZeroUsize>| -> Placement {
        let mut best: Option<Placement> = None;
        for _ in 0..SAMPLES {
            let p = solve(parts_opt);
            if best.as_ref().is_none_or(|b| p.solve_time < b.solve_time) {
                best = Some(p);
            }
        }
        best.expect("SAMPLES > 0")
    };
    let exact = best(None);
    let part = best(Some(NonZeroUsize::new(parts).expect("parts > 0")));
    // profiled partitioned solve (warm cost cache, like the timed runs):
    // attributes rounds/sec to deal/solve/repair and the pricing scopes.
    // The solver reads its ObsHandle off the engine, so a shared engine
    // must have the handle attached directly (set_obs, not request.obs).
    let obs = ObsHandle::recording(0);
    obs.enable_profiling();
    engine.set_obs(obs.clone());
    let _ = PlacementRequest::new(&nmdb, &cfg)
        .engine(&engine)
        .partitions(Some(NonZeroUsize::new(parts).expect("parts > 0")))
        .partition_seed(7)
        .run_lp()
        .expect("generated fat-tree instance is well-formed");
    assert!(
        !part.partition_fallback,
        "{name}: the generated instance is feasible, so the partitioned path must hold"
    );
    let gap_pct = if exact.beta > 0.0 {
        ((part.beta - exact.beta) / exact.beta * 100.0).max(0.0)
    } else {
        0.0
    };
    ScenarioPerf {
        name: name.to_string(),
        nodes,
        // deterministic problem shape: the seeded state draw fixes the
        // Busy/candidate split, so any drift means placement inputs moved
        events_processed: (exact.busy.len() * exact.candidates.len()) as u64,
        peak_queue_len: part.partitions as u64,
        federation_points: exact.assignments.len() as u64,
        events_per_sec: 0.0,
        rounds_per_sec: 1.0 / part.solve_time.as_secs_f64().max(1e-9),
        speedup_vs_tick: 0.0,
        min_speedup: 0.0,
        objective_gap_pct: gap_pct,
        max_gap_pct,
        speedup_vs_exact: exact.solve_time.as_secs_f64() / part.solve_time.as_secs_f64().max(1e-9),
        min_exact_speedup,
        warm_speedup_vs_cold: 0.0,
        min_warm_speedup: 0.0,
        phase_self_ms: phase_string(&obs),
    }
}

/// Seeded link drift shared by both churn arms: retune two links'
/// utilizations per round, leaving node states (and so the problem's
/// busy/candidate shape) fixed between rounds. Two links is the
/// steady-state regime the refresh path is built for — drifting a large
/// slice of links would put every row inside some dirty link's hop cone
/// and reduce both arms to full re-pricing.
fn churn_drift(g: &mut Graph, seed: u64, round: u64) {
    use dust::topology::EdgeId;
    let mut rng = SplitMix64::new(seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let edges = g.edge_count() as u64;
    for _ in 0..2 {
        let e = EdgeId(rng.below(edges) as u32);
        g.link_mut(e).utilization = rng.range_f64(0.05, 0.95);
    }
}

/// Measure warm-started steady-state re-placement against re-solving
/// from scratch on a `k`-port fat-tree whose links drift between rounds
/// (the `churn` story at solver scale). The cold arm builds a fresh
/// `CostEngine` every round — all rows re-price, the solve starts from
/// the north-west corner. The warm arm keeps one engine, refreshes only
/// rows crossing drifted links, and reuses the previous round's bases.
/// Both arms replay the identical drift sequence, so their per-round
/// objectives must agree exactly — asserted here, which is the emit-time
/// form of the warm-equals-cold contract the solver tests pin.
fn measure_churn(name: &str, k: usize, rounds: u64, min_warm_speedup: f64) -> ScenarioPerf {
    eprintln!("measuring {name} ...");
    // The 2-hop bound (own pod plus the cores) is what makes the refresh
    // incremental: a row is re-priced only when a drifted link lands
    // inside its hop cone, so distant drift migrates the row instead.
    // Unbounded routing would put every link in every row's cone and
    // degrade each refresh to a full invalidation.
    let cfg =
        DustConfig::paper_defaults().with_max_hop(Some(2)).with_engine(PathEngine::HopBoundedDp);
    let graph = FatTree::with_default_links(k).graph;
    let nodes = graph.node_count() as u64;
    let nmdb = random_nmdb(&graph, &cfg, &ScenarioParams::default(), 7);

    let run_arm = |warm: bool, obs: Option<ObsHandle>| -> (Duration, f64, u64, Placement) {
        let mut db = nmdb.clone();
        let shared = match &obs {
            Some(o) => CostEngine::new().with_obs(o.clone()),
            None => CostEngine::new(),
        };
        let t = Instant::now();
        let mut beta_sum = 0.0;
        let mut assignments = 0u64;
        let mut last: Option<Placement> = None;
        for round in 0..rounds {
            if round > 0 {
                churn_drift(&mut db.graph, 7, round);
                if warm {
                    shared.refresh(&mut db.graph, 0.25);
                }
            }
            let cold_engine;
            let mut req = PlacementRequest::new(&db, &cfg);
            if warm {
                req = req.engine(&shared);
            } else {
                // a fresh engine per round: every row re-prices
                cold_engine = CostEngine::new();
                req = req.engine(&cold_engine);
            }
            if let Some(w) =
                last.as_ref().filter(|_| warm).map(|p| &p.warm).filter(|w| !w.is_empty())
            {
                req = req.warm_start(w);
            }
            let p = req.run_lp().expect("generated fat-tree instance is well-formed");
            beta_sum += p.beta;
            assignments += p.assignments.len() as u64;
            last = Some(p);
        }
        (t.elapsed(), beta_sum, assignments, last.expect("rounds > 0"))
    };

    let best = |warm: bool| -> (Duration, f64, u64) {
        let mut best: Option<(Duration, f64, u64)> = None;
        for _ in 0..SAMPLES {
            let (d, beta, asg, _) = run_arm(warm, None);
            if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
                best = Some((d, beta, asg));
            }
        }
        best.expect("SAMPLES > 0")
    };
    let (cold_wall, cold_beta, cold_assignments) = best(false);
    let (warm_wall, warm_beta, warm_assignments) = best(true);
    assert!(cold_beta > 0.0, "{name}: the seeded instance must place load every round");
    assert!(
        (cold_beta - warm_beta).abs() <= 1e-6 * cold_beta.abs().max(1.0),
        "{name}: warm and cold arms must reach equal objectives \
         (cold {cold_beta}, warm {warm_beta})"
    );
    assert_eq!(
        cold_assignments, warm_assignments,
        "{name}: warm and cold arms must agree on the assignment count"
    );
    // profiled warm arm: attributes rounds/sec to refresh, pricing, and
    // the solver scopes; its wall-clock is never recorded
    let obs = ObsHandle::recording(0);
    obs.enable_profiling();
    let (_, _, _, last) = run_arm(true, Some(obs.clone()));
    let warm_secs = warm_wall.as_secs_f64().max(1e-9);
    ScenarioPerf {
        name: name.to_string(),
        nodes,
        // deterministic problem shape, as in measure_partition
        events_processed: (last.busy.len() * last.candidates.len()) as u64,
        peak_queue_len: rounds,
        federation_points: warm_assignments,
        events_per_sec: 0.0,
        rounds_per_sec: rounds as f64 / warm_secs,
        speedup_vs_tick: 0.0,
        min_speedup: 0.0,
        objective_gap_pct: 0.0,
        max_gap_pct: 0.0,
        speedup_vs_exact: 0.0,
        min_exact_speedup: 0.0,
        warm_speedup_vs_cold: cold_wall.as_secs_f64() / warm_secs,
        min_warm_speedup,
        phase_self_ms: phase_string(&obs),
    }
}

fn emit() -> BenchBaseline {
    let scale = measure("scale_fleet_k90", 5.0, &|engine, obs| {
        scale_fleet_sim_on(90, 10_000, 1, obs, engine)
    });
    let testbed = measure("testbed_offload_60s", 0.0, &|engine, obs| {
        let (graph, dut) = testbed_topology();
        Simulation::builder()
            .graph(graph)
            .nodes(testbed_nodes(dut))
            .traffic(TrafficModel::testbed())
            .dust(testbed_dust_config())
            .duration_ms(60_000)
            .seed(42)
            .full_monitoring_offload(true)
            .engine(engine)
            .obs(obs)
            .build()
            .expect("testbed knobs are consistent")
    });
    // ISSUE 7 acceptance gate: on the 64-port (paper-scale) fat-tree the
    // k=4 partitioned solve must stay within 5 % of the exact objective
    // while beating the whole-problem solve by at least 3x.
    let partition = measure_partition("partition_fat_tree_64k", 64, 4, 5.0, 3.0);
    // ISSUE 10 acceptance gate: on a drifting 16-port fat-tree, the
    // warm-started steady-state loop (incremental refresh + basis reuse)
    // must re-place at >= 3x the cold-solve rounds/sec, at equal
    // objectives (asserted inside measure_churn).
    let churn = measure_churn("churn_steady_state", 16, 40, 3.0);
    BenchBaseline { version: BASELINE_VERSION, scenarios: vec![scale, testbed, partition, churn] }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit") => {
            let mut out: Option<String> = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out = Some(it.next().unwrap_or_else(|| usage()).clone()),
                    _ => usage(),
                }
            }
            let baseline = emit();
            let json = baseline.to_json();
            match out {
                Some(path) => {
                    std::fs::write(&path, &json).unwrap_or_else(|e| {
                        eprintln!("dust-perf: cannot write {path}: {e}");
                        std::process::exit(1)
                    });
                    eprintln!("wrote {path}");
                }
                None => print!("{json}"),
            }
        }
        Some("compare") => {
            let mut baseline: Option<String> = None;
            let mut candidate: Option<String> = None;
            let mut tolerance = 0.2f64;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--baseline" => baseline = Some(it.next().unwrap_or_else(|| usage()).clone()),
                    "--candidate" => candidate = Some(it.next().unwrap_or_else(|| usage()).clone()),
                    "--tolerance" => {
                        tolerance =
                            it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
                    }
                    _ => usage(),
                }
            }
            let (Some(bp), Some(cp)) = (baseline, candidate) else { usage() };
            let read = |p: &str| -> BenchBaseline {
                let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("dust-perf: cannot read {p}: {e}");
                    std::process::exit(1)
                });
                BenchBaseline::parse(&text).unwrap_or_else(|e| {
                    eprintln!("dust-perf: {p}: {e}");
                    std::process::exit(1)
                })
            };
            let base = read(&bp);
            let failures = base.compare(&read(&cp), tolerance);
            if failures.is_empty() {
                println!(
                    "perf baseline OK ({} scenarios, tolerance {tolerance})",
                    base.scenarios.len()
                );
            } else {
                for f in &failures {
                    eprintln!("FAIL {f}");
                }
                std::process::exit(1)
            }
        }
        _ => usage(),
    }
}
