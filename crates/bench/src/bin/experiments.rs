//! Figure-regeneration harness: one subcommand per table/figure of the
//! DUST paper's evaluation (§V).
//!
//! ```sh
//! cargo run --release -p dust-bench --bin experiments -- all
//! cargo run --release -p dust-bench --bin experiments -- fig8 --seed 1 --full
//! ```
//!
//! Output is plain text; EXPERIMENTS.md records the paper-vs-measured
//! comparison for each figure.

use dust_bench::figures::{self, Effort};
use dust_bench::DEFAULT_SEED;

const USAGE: &str = "usage: experiments <fig1|...|fig12|zoned|fleet|congestion|all> \
[--seed N] [--full]

  fig1   monitoring-module CPU vs VxLAN traffic (testbed sim)
  fig6   local vs DUST resource utilization (testbed sim)
  fig7   infeasible-optimization rate vs delta_io (4-k)
  fig8   ILP time vs max-hop, 4-k, exhaustive enumeration
  fig9   heuristic success split vs ILP (4-k)
  fig10  ILP time vs max-hop, 8-k and 16-k
  fig11  HFR and ILP time vs network scale
  fig12  heuristic runtime vs scale (to 5120 nodes)
  zoned  extension: zoned placement (paper's <=80-node-zone recommendation)
  fleet  extension: all edge switches offload simultaneously
  congestion  extension: QoS squeeze on offloaded telemetry
  partition   extension: POP-style partitioned solve, gap/speedup vs k
  int         extension: INT sampling, deterministic 1/N vs probabilistic p
  storm       extension: zone_storm scenario convergence ladder
  all    everything above, in order

  --seed N   master seed (default printed in the header)
  --full     paper-scale iteration counts (slower)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<String> = None;
    let mut seed = DEFAULT_SEED;
    let mut effort = Effort::Quick;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value\n{USAGE}");
                    std::process::exit(2);
                });
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid seed {v:?}\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--full" => effort = Effort::Full,
            "--quick" => effort = Effort::Quick,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other if cmd.is_none() && !other.starts_with('-') => cmd = Some(other.to_string()),
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(cmd) = cmd else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    println!(
        "DUST experiment harness — seed {seed}, {} mode\n",
        if effort == Effort::Full { "full" } else { "quick" }
    );
    let out = match cmd.as_str() {
        "fig1" => figures::fig1(seed, effort),
        "fig6" => figures::fig6(seed, effort),
        "fig7" => figures::fig7(seed, effort),
        "fig8" => figures::fig8(seed, effort),
        "fig9" => figures::fig9(seed, effort),
        "fig10" => figures::fig10(seed, effort),
        "fig11" => figures::fig11(seed, effort),
        "fig12" => figures::fig12(seed, effort),
        "zoned" => figures::zoned(seed, effort),
        "fleet" => figures::fleet(seed, effort),
        "congestion" => figures::congestion(seed, effort),
        "partition" => figures::partition(seed, effort),
        "int" => figures::int_contrast(seed, effort),
        "storm" => figures::zone_storm(seed, effort),
        "all" => figures::all(seed, effort),
        other => {
            eprintln!("unknown figure {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    };
    println!("{out}");
}
