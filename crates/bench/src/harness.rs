//! A minimal, dependency-free micro-benchmark runner.
//!
//! Every `benches/*.rs` target sets `harness = false` and drives this
//! runner from a plain `main`. Each measurement calibrates an iteration
//! batch from a single warm-up run, takes several samples, and reports
//! the fastest per-iteration time (the most repeatable statistic on a
//! shared machine: external noise only ever slows a sample down).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock budget for one measurement (all samples together).
const TARGET: Duration = Duration::from_millis(400);

/// Samples per measurement.
const SAMPLES: u32 = 5;

/// Measure the fastest per-iteration time of `f`.
///
/// One warm-up call sizes the batch so the whole measurement stays near
/// [`TARGET`]; slow closures (> the per-sample budget) run once per
/// sample.
pub fn time<T>(mut f: impl FnMut() -> T) -> Duration {
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let per_sample = TARGET / SAMPLES;
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
    let mut best = Duration::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed() / iters);
    }
    // a fully optimized-out closure can divide down to < 1 ns; clamp so
    // "faster than the clock resolves" never reads as a zero duration
    best.max(Duration::from_nanos(1))
}

/// Render a duration with a unit fitting its magnitude.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of measurements printed as aligned `group/label  time`
/// lines, mirroring the layout of the previous Criterion output.
pub struct Runner {
    group: String,
}

impl Runner {
    /// Start a benchmark group.
    pub fn group(name: &str) -> Self {
        println!("## {name}");
        Runner { group: name.to_string() }
    }

    /// Measure `f` and print one result line; returns the fastest
    /// per-iteration time so callers can compute ratios.
    pub fn bench<T>(&self, label: &str, f: impl FnMut() -> T) -> Duration {
        let best = time(f);
        println!("{:<52} {:>12}", format!("{}/{label}", self.group), fmt_duration(best));
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_positive_and_sane() {
        let d = time(|| (0..100u64).sum::<u64>());
        assert!(d > Duration::ZERO);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn durations_format_with_fitting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_500)), "1.50 µs");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00 s");
    }
}
