//! The committed performance baseline (`BENCH_seed.json`) and its
//! comparison logic.
//!
//! `dust-perf emit` measures the named scenarios and writes one JSON
//! document; the repository commits the result as `BENCH_seed.json`.
//! `dust-perf compare` reruns the same scenarios on the current tree and
//! fails when the candidate regresses:
//!
//! * **Deterministic fields** (`events_processed`, `nodes`,
//!   `peak_queue_len`, `federation_points`) must match **exactly** —
//!   they are machine-independent, so any drift means the simulation
//!   itself changed and the baseline must be consciously refreshed.
//! * **Throughput** (`events_per_sec`, `rounds_per_sec`) may regress at
//!   most `tolerance` (default 20 %) — these are wall-clock numbers and
//!   inherit machine noise.
//! * **`speedup_vs_tick`** is the event core's advantage over the tick
//!   core *measured on the same machine in the same process*, which
//!   cancels machine speed out of the comparison; it must stay at or
//!   above the scenario's committed `min_speedup` floor.
//!
//! The JSON is hand-rolled (the workspace is std-only) with a fixed
//! field order, so two emits of the same tree on the same machine differ
//! only in measured throughput.

/// One named scenario's perf record.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPerf {
    /// Stable scenario name, e.g. `scale_fleet_k90`.
    pub name: String,
    /// Fleet size (deterministic).
    pub nodes: u64,
    /// Simulation events processed (deterministic, identical across
    /// cores — see `SimReport::events_processed`).
    pub events_processed: u64,
    /// Peak pending events in the queue (deterministic allocation-pressure
    /// proxy for the event core's working set).
    pub peak_queue_len: u64,
    /// Total recorded metric points across the federation (deterministic
    /// peak-RSS proxy: the run's dominant retained allocation).
    pub federation_points: u64,
    /// Event-core throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Placement rounds per wall-clock second (0 when the scenario's
    /// control plane is idle).
    pub rounds_per_sec: f64,
    /// Event-core over tick-core wall-clock ratio, same machine.
    pub speedup_vs_tick: f64,
    /// Committed floor for `speedup_vs_tick` (0 disables the gate).
    pub min_speedup: f64,
    /// Partitioned-solve objective gap vs the exact optimum, in percent
    /// (0 for scenarios without a partitioned solve).
    pub objective_gap_pct: f64,
    /// Committed ceiling for `objective_gap_pct` (0 disables the gate).
    pub max_gap_pct: f64,
    /// Partitioned-solve wall-clock speedup over the exact whole-problem
    /// solve, same machine (0 for scenarios without a partitioned solve).
    pub speedup_vs_exact: f64,
    /// Committed floor for `speedup_vs_exact` (0 disables the gate).
    pub min_exact_speedup: f64,
    /// Warm-started steady-state re-placement throughput over cold-solve
    /// throughput on the same drifting instance, same machine (0 for
    /// scenarios without a warm loop).
    pub warm_speedup_vs_cold: f64,
    /// Committed floor for `warm_speedup_vs_cold` (0 disables the gate).
    pub min_warm_speedup: f64,
    /// Per-phase self-time from one profiled run, as
    /// `name:ms;name:ms;…` sorted by self-time descending (empty when
    /// the emitter did not profile). Wall-clock like the throughput
    /// fields — never compared exactly, only used to *attribute* a
    /// throughput regression to the phases that grew.
    pub phase_self_ms: String,
}

/// A whole baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchBaseline {
    /// Format version.
    pub version: u32,
    /// Per-scenario records.
    pub scenarios: Vec<ScenarioPerf>,
}

/// Current format version. Version 4 added the warm-start fields
/// (`warm_speedup_vs_cold`/`min_warm_speedup`). Version 3 added
/// `phase_self_ms` (per-phase self-time from a profiled run, used to
/// attribute throughput regressions). Version 2 added the
/// partition-quality fields (`objective_gap_pct`/`max_gap_pct`,
/// `speedup_vs_exact`/`min_exact_speedup`). Older documents still parse,
/// with the missing fields defaulting to 0 / empty (gates and
/// attribution off).
pub const BASELINE_VERSION: u32 = 4;

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "0.00".into()
    }
}

/// Parse a `name:ms;name:ms;…` phase string (tolerant: malformed
/// segments are skipped, an empty string yields an empty list).
fn parse_phases(s: &str) -> Vec<(&str, f64)> {
    s.split(';')
        .filter_map(|seg| {
            let (name, ms) = seg.rsplit_once(':')?;
            Some((name, ms.parse().ok()?))
        })
        .collect()
}

/// Name the phases whose self-time grew the most from `baseline` to
/// `candidate` — the attribution suffix appended to a throughput
/// failure. Empty when either side carries no phase data or nothing
/// grew.
fn phase_attribution(baseline: &str, candidate: &str) -> String {
    let b = parse_phases(baseline);
    let c = parse_phases(candidate);
    if b.is_empty() || c.is_empty() {
        return String::new();
    }
    let mut grew: Vec<(&str, f64, f64)> = c
        .iter()
        .filter_map(|(name, cms)| {
            let bms = b.iter().find(|(n, _)| n == name).map_or(0.0, |(_, m)| *m);
            (*cms > bms).then_some((*name, cms - bms, *cms))
        })
        .collect();
    grew.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
    if grew.is_empty() {
        return String::new();
    }
    let top: Vec<String> = grew
        .iter()
        .take(3)
        .map(|(name, delta, cms)| format!("{name} (+{delta:.2} ms self, now {cms:.2} ms)"))
        .collect();
    format!("; slowest-growing phases: {}", top.join(", "))
}

impl BenchBaseline {
    /// Render as stable, human-diffable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
            out.push_str(&format!("      \"nodes\": {},\n", s.nodes));
            out.push_str(&format!("      \"events_processed\": {},\n", s.events_processed));
            out.push_str(&format!("      \"peak_queue_len\": {},\n", s.peak_queue_len));
            out.push_str(&format!("      \"federation_points\": {},\n", s.federation_points));
            out.push_str(&format!("      \"events_per_sec\": {},\n", fmt_f64(s.events_per_sec)));
            out.push_str(&format!("      \"rounds_per_sec\": {},\n", fmt_f64(s.rounds_per_sec)));
            out.push_str(&format!("      \"speedup_vs_tick\": {},\n", fmt_f64(s.speedup_vs_tick)));
            out.push_str(&format!("      \"min_speedup\": {},\n", fmt_f64(s.min_speedup)));
            out.push_str(&format!(
                "      \"objective_gap_pct\": {},\n",
                fmt_f64(s.objective_gap_pct)
            ));
            out.push_str(&format!("      \"max_gap_pct\": {},\n", fmt_f64(s.max_gap_pct)));
            out.push_str(&format!(
                "      \"speedup_vs_exact\": {},\n",
                fmt_f64(s.speedup_vs_exact)
            ));
            out.push_str(&format!(
                "      \"min_exact_speedup\": {},\n",
                fmt_f64(s.min_exact_speedup)
            ));
            out.push_str(&format!(
                "      \"warm_speedup_vs_cold\": {},\n",
                fmt_f64(s.warm_speedup_vs_cold)
            ));
            out.push_str(&format!(
                "      \"min_warm_speedup\": {},\n",
                fmt_f64(s.min_warm_speedup)
            ));
            out.push_str(&format!("      \"phase_self_ms\": \"{}\"\n", s.phase_self_ms));
            out.push_str(if i + 1 == self.scenarios.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a document produced by [`BenchBaseline::to_json`]. The parser
    /// is line-oriented over that fixed shape — it accepts any field
    /// order inside a scenario object but not arbitrary JSON.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut version: Option<u32> = None;
        let mut scenarios = Vec::new();
        let mut cur: Option<ScenarioPerf> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim().trim_end_matches(',');
            let err = |m: &str| format!("line {}: {m}: {raw:?}", lineno + 1);
            if line == "{"
                || line == "["
                || line == "\"scenarios\": ["
                || line == "]"
                || line == "}"
            {
                if line == "{" && version.is_some() {
                    cur = Some(ScenarioPerf {
                        name: String::new(),
                        nodes: 0,
                        events_processed: 0,
                        peak_queue_len: 0,
                        federation_points: 0,
                        events_per_sec: 0.0,
                        rounds_per_sec: 0.0,
                        speedup_vs_tick: 0.0,
                        min_speedup: 0.0,
                        objective_gap_pct: 0.0,
                        max_gap_pct: 0.0,
                        speedup_vs_exact: 0.0,
                        min_exact_speedup: 0.0,
                        warm_speedup_vs_cold: 0.0,
                        min_warm_speedup: 0.0,
                        phase_self_ms: String::new(),
                    });
                }
                if line == "}" {
                    if let Some(s) = cur.take() {
                        if s.name.is_empty() {
                            return Err(err("scenario without a name"));
                        }
                        scenarios.push(s);
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once(':') else { continue };
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match (key, &mut cur) {
                ("version", None) => {
                    version = Some(value.parse().map_err(|_| err("version must be an integer"))?);
                }
                ("name", Some(s)) => s.name = value.trim_matches('"').to_string(),
                ("nodes", Some(s)) => {
                    s.nodes = value.parse().map_err(|_| err("bad integer"))?;
                }
                ("events_processed", Some(s)) => {
                    s.events_processed = value.parse().map_err(|_| err("bad integer"))?;
                }
                ("peak_queue_len", Some(s)) => {
                    s.peak_queue_len = value.parse().map_err(|_| err("bad integer"))?;
                }
                ("federation_points", Some(s)) => {
                    s.federation_points = value.parse().map_err(|_| err("bad integer"))?;
                }
                ("events_per_sec", Some(s)) => {
                    s.events_per_sec = value.parse().map_err(|_| err("bad number"))?;
                }
                ("rounds_per_sec", Some(s)) => {
                    s.rounds_per_sec = value.parse().map_err(|_| err("bad number"))?;
                }
                ("speedup_vs_tick", Some(s)) => {
                    s.speedup_vs_tick = value.parse().map_err(|_| err("bad number"))?;
                }
                ("min_speedup", Some(s)) => {
                    s.min_speedup = value.parse().map_err(|_| err("bad number"))?;
                }
                ("objective_gap_pct", Some(s)) => {
                    s.objective_gap_pct = value.parse().map_err(|_| err("bad number"))?;
                }
                ("max_gap_pct", Some(s)) => {
                    s.max_gap_pct = value.parse().map_err(|_| err("bad number"))?;
                }
                ("speedup_vs_exact", Some(s)) => {
                    s.speedup_vs_exact = value.parse().map_err(|_| err("bad number"))?;
                }
                ("min_exact_speedup", Some(s)) => {
                    s.min_exact_speedup = value.parse().map_err(|_| err("bad number"))?;
                }
                ("warm_speedup_vs_cold", Some(s)) => {
                    s.warm_speedup_vs_cold = value.parse().map_err(|_| err("bad number"))?;
                }
                ("min_warm_speedup", Some(s)) => {
                    s.min_warm_speedup = value.parse().map_err(|_| err("bad number"))?;
                }
                ("phase_self_ms", Some(s)) => {
                    s.phase_self_ms = value.trim_matches('"').to_string();
                }
                ("scenarios", _) => {}
                (other, _) => return Err(err(&format!("unexpected key {other:?}"))),
            }
        }
        let version = version.ok_or("missing version")?;
        if version == 0 || version > BASELINE_VERSION {
            return Err(format!("unsupported baseline version {version}"));
        }
        if scenarios.is_empty() {
            return Err("baseline has no scenarios".into());
        }
        Ok(BenchBaseline { version, scenarios })
    }

    /// Compare `candidate` against this baseline. Returns the list of
    /// failures (empty = pass). `tolerance` is the allowed fractional
    /// throughput regression, e.g. `0.2` for 20 %.
    pub fn compare(&self, candidate: &BenchBaseline, tolerance: f64) -> Vec<String> {
        let mut failures = Vec::new();
        for b in &self.scenarios {
            let Some(c) = candidate.scenarios.iter().find(|s| s.name == b.name) else {
                failures.push(format!("{}: missing from candidate", b.name));
                continue;
            };
            for (field, bv, cv) in [
                ("nodes", b.nodes, c.nodes),
                ("events_processed", b.events_processed, c.events_processed),
                ("peak_queue_len", b.peak_queue_len, c.peak_queue_len),
                ("federation_points", b.federation_points, c.federation_points),
            ] {
                if bv != cv {
                    failures.push(format!(
                        "{}: deterministic field {field} drifted: baseline {bv}, candidate {cv} \
                         (simulation behaviour changed; refresh BENCH_seed.json deliberately)",
                        b.name
                    ));
                }
            }
            let attribution = phase_attribution(&b.phase_self_ms, &c.phase_self_ms);
            let floor = b.events_per_sec * (1.0 - tolerance);
            if c.events_per_sec < floor {
                failures.push(format!(
                    "{}: events/sec regressed beyond {:.0} %: baseline {:.0}, candidate {:.0} \
                     (floor {:.0}){attribution}",
                    b.name,
                    tolerance * 100.0,
                    b.events_per_sec,
                    c.events_per_sec,
                    floor
                ));
            }
            if b.rounds_per_sec > 0.0 {
                let floor = b.rounds_per_sec * (1.0 - tolerance);
                if c.rounds_per_sec < floor {
                    failures.push(format!(
                        "{}: rounds/sec regressed beyond {:.0} %: baseline {:.2}, \
                         candidate {:.2}{attribution}",
                        b.name,
                        tolerance * 100.0,
                        b.rounds_per_sec,
                        c.rounds_per_sec
                    ));
                }
            }
            if b.min_speedup > 0.0 && c.speedup_vs_tick < b.min_speedup {
                failures.push(format!(
                    "{}: event-core speedup vs tick fell below the committed floor: \
                     {:.2}x < {:.2}x{attribution}",
                    b.name, c.speedup_vs_tick, b.min_speedup
                ));
            }
            if b.max_gap_pct > 0.0 && c.objective_gap_pct > b.max_gap_pct {
                failures.push(format!(
                    "{}: partitioned objective gap exceeds the committed ceiling: \
                     {:.2} % > {:.2} %{attribution}",
                    b.name, c.objective_gap_pct, b.max_gap_pct
                ));
            }
            if b.min_exact_speedup > 0.0 && c.speedup_vs_exact < b.min_exact_speedup {
                failures.push(format!(
                    "{}: partitioned speedup over the exact solve fell below the committed \
                     floor: {:.2}x < {:.2}x{attribution}",
                    b.name, c.speedup_vs_exact, b.min_exact_speedup
                ));
            }
            if b.min_warm_speedup > 0.0 && c.warm_speedup_vs_cold < b.min_warm_speedup {
                failures.push(format!(
                    "{}: warm-start speedup over the cold solve fell below the committed \
                     floor: {:.2}x < {:.2}x{attribution}",
                    b.name, c.warm_speedup_vs_cold, b.min_warm_speedup
                ));
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchBaseline {
        BenchBaseline {
            version: BASELINE_VERSION,
            scenarios: vec![
                ScenarioPerf {
                    name: "scale_fleet_k90".into(),
                    nodes: 10_125,
                    events_processed: 121_589,
                    peak_queue_len: 3,
                    federation_points: 2_063_457,
                    events_per_sec: 500_000.0,
                    rounds_per_sec: 0.2,
                    speedup_vs_tick: 7.0,
                    min_speedup: 5.0,
                    objective_gap_pct: 0.0,
                    max_gap_pct: 0.0,
                    speedup_vs_exact: 0.0,
                    min_exact_speedup: 0.0,
                    warm_speedup_vs_cold: 0.0,
                    min_warm_speedup: 0.0,
                    phase_self_ms: "sim.event.stat_emission:120.00;sim.resource_walk:80.00;\
                                    sim.telemetry_batch:40.00"
                        .into(),
                },
                ScenarioPerf {
                    name: "testbed_chaos".into(),
                    nodes: 6,
                    events_processed: 1_800,
                    peak_queue_len: 12,
                    federation_points: 2_160,
                    events_per_sec: 90_000.0,
                    rounds_per_sec: 11.0,
                    speedup_vs_tick: 1.1,
                    min_speedup: 0.0,
                    objective_gap_pct: 0.0,
                    max_gap_pct: 0.0,
                    speedup_vs_exact: 0.0,
                    min_exact_speedup: 0.0,
                    warm_speedup_vs_cold: 0.0,
                    min_warm_speedup: 0.0,
                    phase_self_ms: "proto.manager_tick:12.00;cost.price_rows:5.00".into(),
                },
                ScenarioPerf {
                    name: "partition_fat_tree".into(),
                    nodes: 5_120,
                    events_processed: 0,
                    peak_queue_len: 4,
                    federation_points: 0,
                    events_per_sec: 0.0,
                    rounds_per_sec: 0.4,
                    speedup_vs_tick: 0.0,
                    min_speedup: 0.0,
                    objective_gap_pct: 2.1,
                    max_gap_pct: 5.0,
                    speedup_vs_exact: 4.5,
                    min_exact_speedup: 3.0,
                    warm_speedup_vs_cold: 4.0,
                    min_warm_speedup: 3.0,
                    phase_self_ms: "lp.partition.solve:300.00;lp.partition.deal:40.00".into(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let parsed = BenchBaseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed.version, b.version);
        assert_eq!(parsed.scenarios.len(), 3);
        assert_eq!(parsed.scenarios[0].name, "scale_fleet_k90");
        assert_eq!(parsed.scenarios[0].events_processed, 121_589);
        assert_eq!(parsed.scenarios[1].rounds_per_sec, 11.0);
        assert_eq!(parsed.scenarios[0].min_speedup, 5.0);
        assert_eq!(parsed.scenarios[2].objective_gap_pct, 2.1);
        assert_eq!(parsed.scenarios[2].max_gap_pct, 5.0);
        assert_eq!(parsed.scenarios[2].speedup_vs_exact, 4.5);
        assert_eq!(parsed.scenarios[2].min_exact_speedup, 3.0);
        assert_eq!(
            parsed.scenarios[2].phase_self_ms, "lp.partition.solve:300.00;lp.partition.deal:40.00",
            "phase strings (which contain colons) must survive the line parser"
        );
        assert_eq!(parsed.scenarios[0].phase_self_ms, b.scenarios[0].phase_self_ms);
    }

    #[test]
    fn version_2_documents_still_parse_with_empty_phases() {
        let mut v2 = sample();
        v2.version = 2;
        for s in &mut v2.scenarios {
            s.phase_self_ms = String::new();
        }
        // drop the phase_self_ms lines entirely, as a real v2 file has
        let json: String = v2
            .to_json()
            .lines()
            .filter(|l| !l.contains("phase_self_ms"))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = BenchBaseline::parse(&json).unwrap();
        assert_eq!(parsed.version, 2);
        assert!(parsed.scenarios.iter().all(|s| s.phase_self_ms.is_empty()));
    }

    #[test]
    fn version_1_documents_still_parse_with_gates_off() {
        let v1 = "{\n  \"version\": 1,\n  \"scenarios\": [\n    {\n      \
                  \"name\": \"scale_fleet_k90\",\n      \"nodes\": 10125,\n      \
                  \"events_processed\": 121589,\n      \"peak_queue_len\": 3,\n      \
                  \"federation_points\": 2035125,\n      \"events_per_sec\": 523537.28,\n      \
                  \"rounds_per_sec\": 8.61,\n      \"speedup_vs_tick\": 7.41,\n      \
                  \"min_speedup\": 5.00\n    }\n  ]\n}\n";
        let parsed = BenchBaseline::parse(v1).unwrap();
        assert_eq!(parsed.version, 1);
        assert_eq!(parsed.scenarios[0].max_gap_pct, 0.0, "v1 leaves the gap gate off");
        assert_eq!(parsed.scenarios[0].min_exact_speedup, 0.0);
    }

    #[test]
    fn identical_runs_pass() {
        let b = sample();
        assert!(b.compare(&sample(), 0.2).is_empty());
    }

    #[test]
    fn throughput_within_tolerance_passes() {
        let b = sample();
        let mut c = sample();
        c.scenarios[0].events_per_sec = 420_000.0; // -16 %
        assert!(b.compare(&c, 0.2).is_empty());
    }

    #[test]
    fn throughput_regression_fails() {
        let b = sample();
        let mut c = sample();
        c.scenarios[0].events_per_sec = 350_000.0; // -30 %
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("events/sec regressed"), "{f:?}");
        // identical phase data: nothing grew, so no attribution suffix
        assert!(!f[0].contains("slowest-growing"), "{f:?}");
    }

    #[test]
    fn throughput_regression_names_the_phases_that_grew() {
        let b = sample();
        let mut c = sample();
        c.scenarios[0].events_per_sec = 350_000.0; // -30 %
        c.scenarios[0].phase_self_ms = "sim.event.stat_emission:121.00;\
                                        sim.resource_walk:290.00;sim.telemetry_batch:40.00"
            .into();
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("slowest-growing phases:"), "{f:?}");
        // the biggest delta leads: resource_walk grew 80 → 290 ms
        assert!(f[0].contains("sim.resource_walk (+210.00 ms self, now 290.00 ms)"), "{f:?}");
        let walk = f[0].find("sim.resource_walk").unwrap();
        let stat = f[0].rfind("sim.event.stat_emission").unwrap();
        assert!(walk < stat, "phases must be ordered by delta: {f:?}");
        // a brand-new phase counts as grown from zero
        let mut c = sample();
        c.scenarios[0].rounds_per_sec = 0.01;
        c.scenarios[0].phase_self_ms = "cost.row_price:55.00".into();
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("cost.row_price (+55.00 ms self"), "{f:?}");
        // no phase data on the candidate: the failure stands, unattributed
        let mut c = sample();
        c.scenarios[0].events_per_sec = 1.0;
        c.scenarios[0].phase_self_ms = String::new();
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(!f[0].contains("slowest-growing"), "{f:?}");
    }

    #[test]
    fn deterministic_drift_fails_regardless_of_speed() {
        let b = sample();
        let mut c = sample();
        c.scenarios[0].events_processed += 1;
        c.scenarios[0].events_per_sec *= 10.0;
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("events_processed drifted"), "{f:?}");
    }

    #[test]
    fn speedup_floor_is_enforced() {
        let b = sample();
        let mut c = sample();
        c.scenarios[0].speedup_vs_tick = 4.2;
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("below the committed floor"), "{f:?}");
        // the ungated scenario may move freely
        let mut c = sample();
        c.scenarios[1].speedup_vs_tick = 0.5;
        assert!(b.compare(&c, 0.2).is_empty());
    }

    #[test]
    fn gap_ceiling_is_enforced() {
        let b = sample();
        let mut c = sample();
        c.scenarios[2].objective_gap_pct = 7.3;
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("objective gap exceeds"), "{f:?}");
        // scenarios without a committed ceiling may drift freely
        let mut c = sample();
        c.scenarios[0].objective_gap_pct = 40.0;
        assert!(b.compare(&c, 0.2).is_empty());
    }

    #[test]
    fn version_3_documents_still_parse_with_warm_gates_off() {
        let mut v3 = sample();
        v3.version = 3;
        for s in &mut v3.scenarios {
            s.warm_speedup_vs_cold = 0.0;
            s.min_warm_speedup = 0.0;
        }
        // drop the warm lines entirely, as a real v3 file has
        let json: String = v3
            .to_json()
            .lines()
            .filter(|l| !l.contains("warm_speedup_vs_cold") && !l.contains("min_warm_speedup"))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = BenchBaseline::parse(&json).unwrap();
        assert_eq!(parsed.version, 3);
        assert!(parsed.scenarios.iter().all(|s| s.min_warm_speedup == 0.0));
    }

    #[test]
    fn warm_speedup_floor_is_enforced() {
        let b = sample();
        let mut c = sample();
        c.scenarios[2].warm_speedup_vs_cold = 1.4;
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("warm-start speedup over the cold solve"), "{f:?}");
        // scenarios without a committed floor may drift freely
        let mut c = sample();
        c.scenarios[0].warm_speedup_vs_cold = 0.1;
        assert!(b.compare(&c, 0.2).is_empty());
    }

    #[test]
    fn gate_failures_carry_phase_attribution() {
        // the attribution suffix is not just for throughput failures:
        // gap, exact-speedup, and warm-speedup gate failures name the
        // phases that grew too
        let b = sample();
        let mut c = sample();
        c.scenarios[2].warm_speedup_vs_cold = 1.0;
        c.scenarios[2].phase_self_ms = "lp.partition.solve:900.00;lp.partition.deal:40.00".into();
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("warm-start speedup"), "{f:?}");
        assert!(f[0].contains("slowest-growing phases:"), "{f:?}");
        assert!(f[0].contains("lp.partition.solve (+600.00 ms self"), "{f:?}");
        let mut c = sample();
        c.scenarios[2].objective_gap_pct = 9.0;
        c.scenarios[2].phase_self_ms = "lp.partition.solve:310.00;lp.partition.deal:40.00".into();
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("objective gap exceeds"), "{f:?}");
        assert!(f[0].contains("slowest-growing phases:"), "{f:?}");
    }

    #[test]
    fn exact_speedup_floor_is_enforced() {
        let b = sample();
        let mut c = sample();
        c.scenarios[2].speedup_vs_exact = 1.2;
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("speedup over the exact solve"), "{f:?}");
    }

    #[test]
    fn missing_scenario_fails() {
        let b = sample();
        let mut c = sample();
        c.scenarios.remove(1);
        let f = b.compare(&c, 0.2);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("missing from candidate"), "{f:?}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchBaseline::parse("").is_err());
        assert!(BenchBaseline::parse("{\n  \"version\": 99\n}\n").is_err());
        let mangled = sample().to_json().replace("\"events_per_sec\"", "\"events_per_min\"");
        assert!(BenchBaseline::parse(&mangled).is_err());
    }
}
