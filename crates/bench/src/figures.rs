//! One regeneration routine per table/figure of the paper's evaluation
//! (§V). Each returns the rendered table plus a short shape-comparison
//! note; the `experiments` binary prints them and EXPERIMENTS.md records
//! the outcomes.

use crate::{experiment_config, experiment_params, mean_secs, timed, Table};
use dust::prelude::*;

/// Effort level for the sweeps: `quick` trims iteration counts so the full
/// suite finishes in a couple of minutes; `full` runs paper-scale sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Trimmed iteration counts.
    Quick,
    /// Paper-scale sweeps (minutes).
    Full,
}

/// Fig. 1 — monitoring-module CPU vs VxLAN traffic on the testbed DUT.
pub fn fig1(seed: u64, effort: Effort) -> String {
    let per_level = match effort {
        Effort::Quick => 61_000,
        Effort::Full => 181_000,
    };
    let levels = [0.0, 0.05, 0.10, 0.15, 0.20];
    let rows = dust::sim::registry::fig1_curve(&levels, per_level, seed);
    let mut t = Table::new(&["traffic (% line rate)", "mean CPU (% of core)", "peak CPU (%)"]);
    for r in rows {
        t.row(&[
            format!("{:.0}", r.traffic_fraction * 100.0),
            format!("{:.1}", r.mean_cpu_percent),
            format!("{:.1}", r.peak_cpu_percent),
        ]);
    }
    format!(
        "Fig. 1 — monitoring module CPU vs traffic (10 agents, 8-core DUT)\n{}\n\
         paper: ≈100 % average at 20 % line rate, spikes to ≈600 %.\n",
        t.render()
    )
}

/// Fig. 6 — DUT CPU/memory, local monitoring vs DUST offloading.
pub fn fig6(seed: u64, effort: Effort) -> String {
    let duration = match effort {
        Effort::Quick => 120_000,
        Effort::Full => 300_000,
    };
    let r = dust::sim::registry::fig6_contrast(duration, seed);
    let mut t = Table::new(&["metric", "local", "DUST", "reduction (%)"]);
    t.row(&[
        "CPU (%)".into(),
        format!("{:.1}", r.local_cpu),
        format!("{:.1}", r.dust_cpu),
        format!("{:.1}", r.cpu_reduction_percent()),
    ]);
    t.row(&[
        "memory (%)".into(),
        format!("{:.1}", r.local_mem),
        format!("{:.1}", r.dust_mem),
        format!("{:.1}", r.mem_reduction_percent()),
    ]);
    format!(
        "Fig. 6 — testbed resource utilization, local vs DUST ({} transfers)\n{}\n\
         paper: CPU 31→15 % (≈52 % cut), memory 70→62 % (≈12 % cut).\n",
        r.transfers,
        t.render()
    )
}

/// Fig. 7 — infeasible-optimization rate vs `Δ_io` on the 4-k fat-tree.
pub fn fig7(seed: u64, effort: Effort) -> String {
    let iterations = match effort {
        Effort::Quick => 300,
        Effort::Full => 1000, // the paper's count
    };
    let ft = FatTree::with_default_links(4);
    // Fixed C_max = 85, sweep CO_max so Δ_io spans the paper's 0.8..3.5
    // (Δ = (CO_max − 5) / 15; CO_max stays below C_max for the whole sweep).
    let base = DustConfig::paper_defaults()
        .with_engine(PathEngine::HopBoundedDp)
        .with_thresholds(85.0, 20.0, 5.0);
    let co_sweep: Vec<(f64, f64)> =
        [0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5].iter().map(|d| (85.0, 5.0 + d * 15.0)).collect();
    let pts = io_rate_sweep(&ft.graph, &base, &co_sweep, &experiment_params(), seed, iterations);
    let mut t = Table::new(&["C_max", "CO_max", "delta_io", "io rate (%)", "iterations"]);
    for p in &pts {
        t.row(&[
            format!("{:.0}", p.c_max),
            format!("{:.1}", p.co_max),
            format!("{:.2}", p.delta_io),
            format!("{:.1}", p.io_rate_percent),
            p.iterations.to_string(),
        ]);
    }
    format!(
        "Fig. 7 — infeasible-optimization rate vs delta_io (4-k, {iterations} iterations)\n{}\n\
         paper: io rate 69 % at delta 0.8 falling to 0.2 % at delta 3.5; recommend K_io >= 2.\n",
        t.render()
    )
}

/// Fig. 8 — ILP computation time vs max-hop on the 4-k fat-tree, with the
/// paper-faithful exhaustive path enumeration.
pub fn fig8(seed: u64, effort: Effort) -> String {
    let iterations = match effort {
        Effort::Quick => 20,
        Effort::Full => 100, // the paper's count
    };
    let ft = FatTree::with_default_links(4);
    let base = experiment_config().with_engine(PathEngine::Enumerate);
    let mut t = Table::new(&["max-hop", "mean time (ms)", "normalized", "feasible/runs"]);
    let mut first: Option<f64> = None;
    let hops: Vec<Option<usize>> = (1..=12).map(Some).chain(std::iter::once(None)).collect();
    for h in hops {
        let cfg = base.with_max_hop(h);
        let mut times = Vec::new();
        let mut feasible = 0;
        for i in 0..iterations {
            let nmdb = random_nmdb(&ft.graph, &cfg, &experiment_params(), seed + i as u64);
            let (p, d) = timed(|| optimize(&nmdb, &cfg, SolverBackend::Transportation));
            times.push(d);
            if p.status == PlacementStatus::Optimal {
                feasible += 1;
            }
        }
        let mean = mean_secs(&times) * 1e3;
        let norm = *first.get_or_insert(mean.max(1e-9));
        t.row(&[
            h.map_or("unlimited".into(), |x| x.to_string()),
            format!("{mean:.3}"),
            format!("{:.1}x", mean / norm),
            format!("{feasible}/{iterations}"),
        ]);
    }
    format!(
        "Fig. 8 — ILP computation time vs max-hop (4-k, exhaustive path enumeration)\n{}\n\
         paper: < 3.5 s unlimited; 0.5 s threshold => recommended max-hop 10.\n\
         note: absolute times are far lower than the paper's Python+Gurobi; compare the growth shape.\n",
        t.render()
    )
}

/// Fig. 9 — heuristic-vs-ILP success split on the 4-k fat-tree.
pub fn fig9(seed: u64, effort: Effort) -> String {
    let iterations = match effort {
        Effort::Quick => 200,
        Effort::Full => 1000,
    };
    let ft = FatTree::with_default_links(4);
    let cfg = experiment_config().with_engine(PathEngine::HopBoundedDp);
    let mut tally = SuccessTally::default();
    for nmdb in scenario_stream(&ft.graph, &cfg, &experiment_params(), seed, iterations) {
        tally.record(classify_iteration(&nmdb, &cfg));
    }
    let (full, partial, none) = tally.percentages();
    let mut t = Table::new(&["outcome", "share (%)", "count"]);
    t.row(&["heuristic fully offloads".into(), format!("{full:.2}"), tally.full.to_string()]);
    t.row(&[
        "heuristic partial, ILP completes".into(),
        format!("{partial:.2}"),
        tally.partial.to_string(),
    ]);
    t.row(&["heuristic none, ILP succeeds".into(), format!("{none:.2}"), tally.none.to_string()]);
    format!(
        "Fig. 9 — success split over {} comparable iterations (4-k; {} infeasible, {} trivial excluded)\n{}\n\
         paper: 18.37 % full / 75.5 % partial / 6.13 % none.\n",
        tally.comparable(),
        tally.infeasible,
        tally.trivial,
        t.render()
    )
}

/// Figs. 10a/10b — ILP computation time vs max-hop on 8-k and 16-k.
pub fn fig10(seed: u64, effort: Effort) -> String {
    let mut out = String::new();
    let plans: &[(usize, Vec<usize>, usize)] = match effort {
        // (k, hop sweep, iterations)
        Effort::Quick => &[(8, vec![1, 2, 3, 4, 5, 6, 7], 3), (16, vec![1, 2, 3, 4], 2)],
        Effort::Full => &[(8, vec![1, 2, 3, 4, 5, 6, 7], 5), (16, vec![1, 2, 3, 4, 5], 3)],
    };
    for (k, hops, iterations) in plans {
        let ft = FatTree::with_default_links(*k);
        let base = experiment_config().with_engine(PathEngine::Enumerate);
        let mut t = Table::new(&["max-hop", "mean time (s)", "normalized"]);
        let mut first: Option<f64> = None;
        for &h in hops {
            let cfg = base.with_max_hop(Some(h));
            let mut times = Vec::new();
            for i in 0..*iterations {
                let nmdb = random_nmdb(&ft.graph, &cfg, &experiment_params(), seed + i as u64);
                let (_, d) = timed(|| optimize(&nmdb, &cfg, SolverBackend::Transportation));
                times.push(d);
            }
            let mean = mean_secs(&times);
            let norm = *first.get_or_insert(mean.max(1e-12));
            t.row(&[h.to_string(), format!("{mean:.4}"), format!("{:.1}x", mean / norm)]);
        }
        out.push_str(&format!(
            "Fig. 10{} — ILP time vs max-hop ({k}-k fat-tree, {} nodes, exhaustive enumeration)\n{}\n",
            if *k == 8 { 'a' } else { 'b' },
            ft.node_count(),
            t.render()
        ));
    }
    out.push_str(
        "paper: 300 s threshold => recommended max-hop 7 (8-k) and 4 (16-k);\n\
         raising 16-k from hop 4 to 5 costs ~10x. Compare the per-hop growth factors.\n",
    );
    out
}

/// Figs. 11a/11b — HFR and mean ILP time vs network scale.
pub fn fig11(seed: u64, effort: Effort) -> String {
    // (k, heuristic iterations, ILP iterations, recommended max-hop)
    let plans: &[(usize, usize, usize, Option<usize>)] = match effort {
        Effort::Quick => {
            &[(4, 100, 10, Some(10)), (8, 40, 5, Some(7)), (16, 15, 2, Some(4)), (64, 3, 0, None)]
        }
        Effort::Full => {
            &[(4, 300, 20, Some(10)), (8, 100, 10, Some(7)), (16, 30, 3, Some(4)), (64, 5, 0, None)]
        }
    };
    let mut t = Table::new(&[
        "k",
        "nodes",
        "HFR (%)",
        "ILP mean (s)",
        "ILP max-hop",
        "heur iters",
        "ILP iters",
    ]);
    let mut hfr_points: Vec<(f64, f64)> = Vec::new();
    for &(k, h_iters, ilp_iters, max_hop) in plans {
        let ft = FatTree::with_default_links(k);
        let cfg_h = experiment_config().with_engine(PathEngine::HopBoundedDp);
        let mut hfr = 0.0;
        for nmdb in scenario_stream(&ft.graph, &cfg_h, &experiment_params(), seed, h_iters) {
            hfr += heuristic(&nmdb, &cfg_h).hfr_percent();
        }
        hfr /= h_iters as f64;
        hfr_points.push((ft.node_count() as f64, hfr));

        let ilp_mean = if ilp_iters > 0 {
            let cfg_i =
                experiment_config().with_engine(PathEngine::Enumerate).with_max_hop(max_hop);
            let mut times = Vec::new();
            for i in 0..ilp_iters {
                let nmdb =
                    random_nmdb(&ft.graph, &cfg_i, &experiment_params(), seed + 1000 + i as u64);
                let (_, d) = timed(|| optimize(&nmdb, &cfg_i, SolverBackend::Transportation));
                times.push(d);
            }
            format!("{:.4}", mean_secs(&times))
        } else {
            "— (heuristic regime)".into()
        };
        t.row(&[
            k.to_string(),
            ft.node_count().to_string(),
            format!("{hfr:.2}"),
            ilp_mean,
            max_hop.map_or("—".into(), |h| h.to_string()),
            h_iters.to_string(),
            ilp_iters.to_string(),
        ]);
    }
    let fit = crate::stats::power_law_fit(&hfr_points)
        .map(|(_, b)| format!("{b:.2}"))
        .unwrap_or_else(|| "n/a".into());
    format!(
        "Fig. 11 — scalability: HFR of the heuristic (a) and mean ILP time (b) vs network size\n{}\n\
         fitted HFR power-law exponent vs node count: {fit} (paper: ~ -0.5)\n\
         paper: HFR falls 47.92 % -> 11.04 %; ILP time rises 0.2 s -> 153+ s.\n\
         The ILP column stops at 320 nodes, as in the paper (beyond that, zone into <=80-node pods).\n",
        t.render()
    )
}

/// Fig. 12 — heuristic runtime vs network scale (up to 5120 nodes).
pub fn fig12(seed: u64, effort: Effort) -> String {
    let plans: &[(usize, usize)] = match effort {
        Effort::Quick => &[(4, 20), (8, 10), (16, 5), (64, 2)],
        Effort::Full => &[(4, 50), (8, 20), (16, 10), (64, 3)],
    };
    let cfg = experiment_config().with_engine(PathEngine::HopBoundedDp);
    let mut t = Table::new(&["k", "nodes", "edges", "mean heuristic time (s)", "normalized"]);
    let mut first: Option<f64> = None;
    for &(k, iters) in plans {
        let ft = FatTree::with_default_links(k);
        let mut times = Vec::new();
        for i in 0..iters {
            let nmdb = random_nmdb(&ft.graph, &cfg, &experiment_params(), seed + i as u64);
            let (_, d) = timed(|| heuristic(&nmdb, &cfg));
            times.push(d);
        }
        let mean = mean_secs(&times);
        let norm = *first.get_or_insert(mean.max(1e-12));
        t.row(&[
            k.to_string(),
            ft.node_count().to_string(),
            ft.edge_count().to_string(),
            format!("{mean:.5}"),
            format!("{:.0}x", mean / norm),
        ]);
    }
    format!(
        "Fig. 12 — heuristic runtime vs scale\n{}\n\
         paper: 124 s at 5120 nodes (Python); ours is faster in absolute terms —\n\
         compare the growth across scales, which tracks |V|+|E| as in the paper.\n",
        t.render()
    )
}

/// Extension experiment — zoned placement (the paper's §V-B scaling
/// recommendation, implemented): global ILP vs per-pod zoned ILP (with and
/// without the cross-zone residual sweep) vs the one-hop heuristic.
pub fn zoned(seed: u64, effort: Effort) -> String {
    use dust::core::{optimize_zoned, zone_fat_tree};
    let plans: &[(usize, usize)] = match effort {
        Effort::Quick => &[(8, 5), (16, 3)],
        Effort::Full => &[(8, 15), (16, 8)],
    };
    let cfg = experiment_config().with_engine(PathEngine::HopBoundedDp);
    let mut t = Table::new(&[
        "k",
        "method",
        "mean time (s)",
        "latency bound (s)",
        "unplaced (% of Cs)",
        "beta vs global",
    ]);
    for &(k, iters) in plans {
        let ft = FatTree::with_default_links(k);
        let zoning = zone_fat_tree(&ft);
        type MethodAcc = (String, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);
        let mut acc: Vec<MethodAcc> = vec![
            ("global ILP".into(), vec![], vec![], vec![], vec![]),
            ("zoned ILP".into(), vec![], vec![], vec![], vec![]),
            ("zoned + sweep".into(), vec![], vec![], vec![], vec![]),
            ("heuristic (1-hop)".into(), vec![], vec![], vec![], vec![]),
        ];
        for i in 0..iters {
            let nmdb = random_nmdb(&ft.graph, &cfg, &experiment_params(), seed + i as u64);
            let total_cs = nmdb.total_cs(&cfg);
            if total_cs <= 0.0 {
                continue;
            }
            let (g, dg) = timed(|| optimize(&nmdb, &cfg, SolverBackend::Transportation));
            let g_ok = g.status == PlacementStatus::Optimal;
            let g_beta = if g_ok { g.beta } else { f64::NAN };
            acc[0].1.push(dg.as_secs_f64());
            acc[0].2.push(dg.as_secs_f64());
            acc[0].3.push(if g_ok { 0.0 } else { 100.0 });
            acc[0].4.push(1.0);

            for (idx, sweep) in [(1usize, false), (2, true)] {
                let (z, _) = timed(|| {
                    optimize_zoned(&nmdb, &cfg, &zoning, SolverBackend::Transportation, sweep)
                });
                acc[idx].1.push(z.total_time.as_secs_f64());
                acc[idx].2.push(z.max_zone_time.as_secs_f64());
                acc[idx].3.push(z.residual_rate_percent(total_cs));
                if g_ok && z.final_residual.is_empty() && g_beta > 0.0 {
                    acc[idx].4.push(z.beta / g_beta);
                }
            }
            let (h, dh) = timed(|| heuristic(&nmdb, &cfg));
            acc[3].1.push(dh.as_secs_f64());
            acc[3].2.push(dh.as_secs_f64());
            acc[3].3.push(h.hfr_percent());
            if g_ok && h.fully_offloaded() && g_beta > 0.0 {
                acc[3].4.push(h.beta / g_beta);
            }
        }
        for (name, times, lat, unplaced, ratio) in &acc {
            let mean = |v: &Vec<f64>| {
                if v.is_empty() {
                    f64::NAN
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            t.row(&[
                k.to_string(),
                name.clone(),
                format!("{:.4}", mean(times)),
                format!("{:.4}", mean(lat)),
                format!("{:.1}", mean(unplaced).max(0.0)),
                if ratio.is_empty() { "n/a".into() } else { format!("{:.3}x", mean(ratio)) },
            ]);
        }
    }
    format!(
        "Extension — zoned placement (paper recommendation: zones of <= 80 nodes)\n{}\n\
         'latency bound' = slowest single zone solve (zones parallelize on the Manager);\n\
         'beta vs global' = optimality gap when everything placed (1.0x = matches global optimum).\n",
        t.render()
    )
}

/// Extension experiment — fleet scale-out: every edge switch of a fat-tree
/// runs the ten-agent deployment and DUST drains them simultaneously.
pub fn fleet(seed: u64, effort: Effort) -> String {
    let plans: &[(usize, u64)] = match effort {
        Effort::Quick => &[(4, 90_000), (8, 90_000)],
        Effort::Full => &[(4, 180_000), (8, 180_000), (16, 120_000)],
    };
    let mut t = Table::new(&[
        "k",
        "monitored",
        "transfers",
        "early mean CPU (%)",
        "settled mean CPU (%)",
        "still busy",
    ]);
    for &(k, duration) in plans {
        let r = dust::sim::scenarios::fleet(k, duration, seed);
        t.row(&[
            k.to_string(),
            r.monitored.to_string(),
            r.transfers.to_string(),
            format!("{:.1}", r.early_mean_cpu),
            format!("{:.1}", r.late_mean_cpu),
            r.still_busy.to_string(),
        ]);
    }
    format!(
        "Extension — fleet offload at scale (all edge switches monitored)
{}
         the abstract's 'savings in computing at scale': settled CPU sits well below the
         pre-offload mean across the whole monitored fleet.
",
        t.render()
    )
}

/// Extension experiment — QoS under congestion (§III-C): offloaded
/// telemetry is squeezed out as the fabric saturates, data plane first.
pub fn congestion(seed: u64, effort: Effort) -> String {
    let duration = match effort {
        Effort::Quick => 120_000,
        Effort::Full => 300_000,
    };
    let r = dust::sim::scenarios::congestion(duration, seed);
    let mut t = Table::new(&["phase", "telemetry dropped (fraction)", "admitted (Mbps)"]);
    t.row(&["20 % load".into(), format!("{:.3}", r.dropped_before), "—".into()]);
    t.row(&[
        "99.9 % squeeze".into(),
        format!("{:.3}", r.dropped_during_congestion),
        format!("{:.1}", r.admitted_during),
    ]);
    format!(
        "Extension — QoS guarantee under congestion (offloaded telemetry is lowest class)
{}
         §III-C: monitoring data 'can be safely discarded in the event of network congestion';
         the data plane is never displaced by telemetry (see dust-proto::qos).
",
        t.render()
    )
}

/// Extension experiment — Fig. 8-style quality/latency sweep of the
/// POP-style partitioned solve: objective gap and solve-time speedup vs
/// the subproblem count `k` on a fat-tree with seeded random states.
pub fn partition(seed: u64, effort: Effort) -> String {
    use std::num::NonZeroUsize;
    let (ft_k, rounds) = match effort {
        Effort::Quick => (16, 3u64),
        Effort::Full => (32, 5u64),
    };
    // hop-bounded DP pricing — enumeration is exponential at these scales
    let cfg = DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp);
    let graph = FatTree::with_default_links(ft_k).graph;
    let engine = CostEngine::new();
    let mut t =
        Table::new(&["partitions", "mean solve (ms)", "speedup vs exact", "gap (%)", "fallbacks"]);
    // one exact reference per round, reused by every k
    let mut exact: Vec<Placement> = Vec::new();
    for round in 0..rounds {
        let nmdb = random_nmdb(&graph, &cfg, &experiment_params(), seed.wrapping_add(round));
        exact.push(
            PlacementRequest::new(&nmdb, &cfg)
                .engine(&engine)
                .run_lp()
                .expect("generated instance is well-formed"),
        );
    }
    let exact_ms =
        exact.iter().map(|p| p.solve_time.as_secs_f64()).sum::<f64>() / rounds as f64 * 1e3;
    for parts in [1usize, 2, 4, 8] {
        let mut solve_ms = 0.0;
        let mut gap_sum = 0.0;
        let mut fallbacks = 0;
        for round in 0..rounds {
            let nmdb = random_nmdb(&graph, &cfg, &experiment_params(), seed.wrapping_add(round));
            let p = PlacementRequest::new(&nmdb, &cfg)
                .engine(&engine)
                .partitions(Some(NonZeroUsize::new(parts).expect("parts > 0")))
                .partition_seed(seed ^ round)
                .run_lp()
                .expect("generated instance is well-formed");
            solve_ms += p.solve_time.as_secs_f64() * 1e3;
            let e = &exact[round as usize];
            if e.beta > 0.0 {
                gap_sum += ((p.beta - e.beta) / e.beta * 100.0).max(0.0);
            }
            if p.partition_fallback {
                fallbacks += 1;
            }
        }
        solve_ms /= rounds as f64;
        t.row(&[
            parts.to_string(),
            format!("{solve_ms:.1}"),
            format!("{:.1}x", exact_ms / solve_ms.max(1e-9)),
            format!("{:.2}", gap_sum / rounds as f64),
            fallbacks.to_string(),
        ]);
    }
    format!(
        "Extension — POP-style partitioned placement ({ft_k}-k fat-tree, {rounds} rounds)
{}
         k=1 is bit-identical to the exact solve; larger k trades a small objective gap
         for solver latency (column pruning + slack slicing + eviction repair).
",
        t.render()
    )
}

/// Extension — INT-style per-packet sampling: deterministic `1/N`
/// versus seeded probabilistic `p` at matched expected fractions. The
/// realized report rate and the agent's modeled CPU cost must agree
/// between the two modes; only the per-packet decision sequence differs.
pub fn int_contrast(seed: u64, effort: Effort) -> String {
    use dust::telemetry::IntSampling;
    let pkts: u64 = match effort {
        Effort::Quick => 100_000,
        Effort::Full => 1_000_000,
    };
    let mut t = Table::new(&[
        "sampling",
        "expected fraction",
        "realized reports/pkt",
        "agent CPU (%, 20% traffic)",
    ]);
    for (n, p) in [(1u32, 1.0f64), (2, 0.5), (4, 0.25), (8, 0.125)] {
        for mode in [IntSampling::Deterministic { n }, IntSampling::Probabilistic { p }] {
            let realized = mode.sampler(seed).reports_for(pkts) as f64 / pkts as f64;
            let agent = MonitorAgent::int(mode);
            let label = match mode {
                IntSampling::Deterministic { n } => format!("det 1/{n}"),
                IntSampling::Probabilistic { p } => format!("prob p={p}"),
            };
            t.row(&[
                label,
                format!("{:.4}", mode.fraction()),
                format!("{:.4}", realized),
                format!("{:.2}", agent.cpu_percent(0.2)),
            ]);
        }
    }
    format!(
        "Extension — INT sampling: deterministic 1/N vs probabilistic p ({pkts} pkts)\n{}\n\
         matched fractions cost the same CPU; deterministic realizes ceil(pkts/N)/pkts\n\
         exactly while probabilistic converges binomially (`sim --scenario int_burst`\n\
         runs both agent flavors on the DUT and is digest-pinned in tests/golden_trace.rs).\n",
        t.render()
    )
}

/// Extension — the `zone_storm` registry scenario across a seed ladder:
/// CPU-cascade storm kills, a pod-wide zone outage, revival, and the
/// re-convergence the SLO spec gates in CI.
pub fn zone_storm(seed: u64, effort: Effort) -> String {
    use dust::sim::registry::{self, ScenarioKnobs};
    let runs = match effort {
        Effort::Quick => 4,
        Effort::Full => 10,
    };
    let sc = registry::find("zone_storm").expect("registered scenario");
    let mut t = Table::new(&[
        "seed",
        "cascades",
        "killed",
        "revived",
        "transfers",
        "first offload (ms)",
        "slo",
    ]);
    for i in 0..runs {
        let s = seed.wrapping_add(i);
        let knobs =
            ScenarioKnobs { obs: dust::obs::ObsHandle::recording(s), ..ScenarioKnobs::seeded(s) };
        let run = sc.run(&knobs).expect("zone_storm builds");
        t.row(&[
            format!("{s}"),
            format!("{}", knobs.obs.counter("sim.storm_cascades")),
            format!("{}", knobs.obs.counter("sim.nodes_killed")),
            format!("{}", knobs.obs.counter("sim.nodes_revived")),
            format!("{}", run.report.transfers_applied),
            run.report.first_transfer_ms.map_or("never".into(), |ms| format!("{ms}")),
            if run.breached() { "BREACH".into() } else { "pass".to_string() },
        ]);
    }
    format!(
        "Extension — zone_storm convergence ladder ({} seeds, {} s each)\n{}\n\
         every seed must converge (offload despite the storm) and pass the\n\
         attached spec `{}` — the same gate CI runs via `dustctl sim --scenario`.\n",
        runs,
        sc.default_duration_ms / 1000,
        t.render(),
        sc.slo_spec
    )
}

/// Run every figure in order.
pub fn all(seed: u64, effort: Effort) -> String {
    [
        fig1(seed, effort),
        fig6(seed, effort),
        fig7(seed, effort),
        fig8(seed, effort),
        fig9(seed, effort),
        fig10(seed, effort),
        fig11(seed, effort),
        fig12(seed, effort),
        zoned(seed, effort),
        fleet(seed, effort),
        congestion(seed, effort),
        partition(seed, effort),
        int_contrast(seed, effort),
        zone_storm(seed, effort),
    ]
    .join("\n")
}
