//! `dustctl` — run DUST placement decisions from a network-state file.
//!
//! ```sh
//! dustctl example > net.dust
//! dustctl roles net.dust
//! dustctl optimize net.dust --max-hop 6
//! dustctl heuristic net.dust --hops 2
//! dustctl zoned net.dust --zone-size 80 --sweep
//! ```

use dust::sim::EngineKind;
use dust_cli::args::{parse_sim_invocation, SimCommandKind};
use dust_cli::commands::{
    cmd_dot, cmd_heuristic, cmd_optimize, cmd_place, cmd_profile, cmd_sim, cmd_spans, cmd_trace,
    cmd_zoned, roles, Options, PlaceOptions, ProfileOptions,
};
use dust_cli::format::{example_file, parse_nmdb};

const USAGE: &str = "usage: dustctl <command> [file] [options]

commands:
  example                      print a sample network-state file
  roles     <file>             classify nodes (Busy / candidate / neutral)
  optimize  <file>             exact min-cost placement with routes
  place     [file]             placement rounds through the exact or POP-style
                               partitioned solve path; reports rounds/sec
  heuristic <file> [--hops N]  Algorithm 1 (default one-hop reach)
  zoned     <file> --zone-size N [--sweep]
                               per-zone placement, optional cross-zone sweep
  dot       <file>             Graphviz view: roles colored + chosen routes
  sim                          chaos-run the testbed under a lossy control plane,
                               or run a named registry scenario (--scenario)
  trace                        chaos-run with the trace recorder on; print the
                               event census and the run's deterministic digest
  spans                        chaos-run and reconstruct per-flow causal span
                               trees: flow table, per-phase p50/p99, critical path
  profile   <scenario>         run one scenario with the wall-clock profiler on
                               and print the folded-stack profile (counts are
                               deterministic per seed; durations are wall-clock);
                               profile help lists the targets

options (all commands taking a file):
  --c-max X     Busy threshold (default 80)
  --co-max X    candidate threshold (default 50)
  --x-min X     minimum utilization (default 5)
  --max-hop N   hop bound on routes (default unlimited)
  --enumerate   paper-faithful exhaustive path enumeration
  --simplex     use the general simplex instead of the transportation solver
  --threads N   T_rmin pricing threads (default: one per core)

place options (plus the file options above):
  --fat-tree K  solve on a generated k-port fat-tree with seeded random
                states instead of a <file> (k = 64 is the paper's scale)
  --partitions K
                split the transport problem into K seeded random
                subproblems solved in parallel (1 = exact; any infeasible
                subproblem falls back to the exact whole-problem solve)
  --batch N     run N placement rounds back-to-back and report rounds/sec
                (generated states re-seed per round with seed+i)
  --seed N      base seed for generated states and the partition shuffle
  --gap         also solve each round exactly; report the objective gap
  --warm        steady-state mode: node states freeze at round 0, links
                drift per round, each solve warm-starts from the previous
                round's bases and re-prices only rows crossing drifted
                links (reports pivots saved and refresh behavior)
  --delta-threshold T
                with --warm, hold the previous placement — skipping the
                solve — when no assignment's re-priced T_rmin degraded by
                more than fraction T
  --profile PATH
                write the solver-side wall-clock profile (simplex, partition
                deal/solve/repair, cost-matrix pricing) to PATH

sim options:
  --scenario NAME
                run a named registry scenario (testbed, chaos, int_burst,
                diurnal, flash_crowd, zone_storm, churn) with its own topology,
                traffic/fault model, duration, and attached SLO spec —
                evaluated by default; --scenario help lists the registry.
                Excludes the fault flags, --sweep, and --inject-breach
  --loss P      drop probability per message, both directions (default 0)
  --dup P       duplication probability per message (default 0)
  --delay MS    base propagation delay per message (default 0)
  --jitter MS   extra uniform delay in 0..=MS, reorders messages (default 0)
  --duration MS simulated time (default 120000)
  --seed N      master seed (default 0)
  --engine NAME simulation core: event (default) or tick; both produce
                byte-identical output for the same flags
  --sweep       sweep loss 0/5/10/20/40% instead of a single --loss run
  --metrics     append the recorded metrics (counters/gauges/histograms)
  --metrics-json
                append one stable JSON object per run (includes the trace
                digest and any SLO breaches) — byte-identical per seed
  --metrics-prom
                append the metrics as a Prometheus-style text exposition
  --slo SPEC    evaluate SLO rules online and exit 1 on any breach, e.g.
                convergence<=15000,retransmit_rate<=0.25,abandons<=0,
                overload_dwell<=20000
  --postmortem PATH
                on an invariant violation, write the flight-recorder dump
                (the most recent trace events + digest) to PATH
  --inject-breach
                corrupt the first run's agent census after the fact, to
                exercise the invariant check and post-mortem path
  --profile PATH
                write the hierarchical wall-clock profile (folded stacks
                plus the top self-time table) to PATH after the run

profile options:
  --seed N      master seed (default 0)
  --duration MS override the scenario's default simulated time
  --engine NAME simulation core to profile: event (default) or tick
  --out PATH    write the artifact to PATH instead of stdout

trace options: same as sim (minus --sweep), plus
  --full        stream the entire decoded event log instead of the census

spans options: same as sim (minus --sweep), plus
  --flow N      show only transfer flow N in the flow table
  --phase NAME  show only NAME in the phase-latency table

exit status: 0 on success, 1 when no feasible placement exists, a sim
invariant breaks, or an --slo rule breaches, 2 on usage errors";

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("dustctl: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else { fail("missing command") };
    if cmd == "example" {
        print!("{}", example_file());
        return;
    }
    if cmd == "-h" || cmd == "--help" {
        println!("{USAGE}");
        return;
    }
    if let Some(kind) = SimCommandKind::from_name(&cmd) {
        let inv = parse_sim_invocation(kind, &args[1..]).unwrap_or_else(|e| fail(e));
        let run_err = |e: String| -> ! {
            eprintln!("dustctl: {e}");
            std::process::exit(1)
        };
        match kind {
            SimCommandKind::Trace => {
                let stdout = std::io::stdout();
                if let Err(e) = cmd_trace(&inv.opts, inv.full, &mut stdout.lock()) {
                    run_err(e)
                }
            }
            SimCommandKind::Spans => match cmd_spans(&inv.opts, inv.flow, inv.phase.as_deref()) {
                Ok(out) => print!("{out}"),
                Err(e) => run_err(e),
            },
            SimCommandKind::Sim => match cmd_sim(&inv.opts) {
                Ok(run) => {
                    print!("{}", run.output);
                    if run.slo_breached {
                        eprintln!("dustctl: SLO breached (see report above)");
                        std::process::exit(1)
                    }
                }
                Err(e) => run_err(e),
            },
        }
        return;
    }
    if cmd == "profile" {
        let Some(name) = args.get(1).cloned().filter(|a| !a.starts_with('-')) else {
            fail("profile needs a scenario name (profile help lists them)")
        };
        let mut popts = ProfileOptions::default();
        let mut it = args.iter().skip(2);
        let value = |it: &mut dyn Iterator<Item = &String>, flag: &str| -> String {
            it.next().unwrap_or_else(|| fail(format!("{flag} needs a value"))).clone()
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = value(&mut it, "--seed");
                    popts.seed =
                        v.parse().unwrap_or_else(|_| fail(format!("--seed: invalid number {v:?}")))
                }
                "--duration" => {
                    let v = value(&mut it, "--duration");
                    popts.duration_ms = Some(
                        v.parse()
                            .unwrap_or_else(|_| fail(format!("--duration: invalid number {v:?}"))),
                    )
                }
                "--engine" => {
                    popts.engine =
                        EngineKind::parse(&value(&mut it, "--engine")).unwrap_or_else(|e| fail(e))
                }
                "--out" => popts.out = Some(value(&mut it, "--out")),
                other => fail(format!("unknown profile option {other:?}")),
            }
        }
        match cmd_profile(&name, &popts) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("dustctl: {e}");
                std::process::exit(1)
            }
        }
        return;
    }
    if cmd == "place" {
        let mut popts = PlaceOptions::default();
        let mut path: Option<String> = None;
        let mut it = args.iter().skip(1);
        let numeric = |it: &mut dyn Iterator<Item = &String>, flag: &str| -> f64 {
            let v = it.next().unwrap_or_else(|| fail(format!("{flag} needs a value")));
            v.parse().unwrap_or_else(|_| fail(format!("{flag}: invalid number {v:?}")))
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--c-max" => popts.base.c_max = numeric(&mut it, "--c-max"),
                "--co-max" => popts.base.co_max = numeric(&mut it, "--co-max"),
                "--x-min" => popts.base.x_min = numeric(&mut it, "--x-min"),
                "--max-hop" => popts.base.max_hop = Some(numeric(&mut it, "--max-hop") as usize),
                "--enumerate" => popts.base.enumerate_paths = true,
                "--simplex" => popts.base.simplex = true,
                "--threads" => popts.base.threads = numeric(&mut it, "--threads") as usize,
                "--fat-tree" => popts.fat_tree = Some(numeric(&mut it, "--fat-tree") as usize),
                "--partitions" => {
                    popts.partitions = Some(numeric(&mut it, "--partitions") as usize)
                }
                "--batch" => popts.batch = numeric(&mut it, "--batch") as usize,
                "--seed" => popts.seed = numeric(&mut it, "--seed") as u64,
                "--gap" => popts.gap = true,
                "--warm" => popts.warm = true,
                "--delta-threshold" => {
                    popts.delta_threshold = Some(numeric(&mut it, "--delta-threshold"))
                }
                "--profile" => {
                    popts.profile =
                        Some(it.next().unwrap_or_else(|| fail("--profile needs a value")).clone())
                }
                other if !other.starts_with('-') && path.is_none() => path = Some(other.into()),
                other => fail(format!("unknown place option {other:?}")),
            }
        }
        let file_nmdb = path.map(|p| {
            let input = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| fail(format!("cannot read {p:?}: {e}")));
            parse_nmdb(&input).unwrap_or_else(|e| fail(format!("{p}: {e}")))
        });
        match cmd_place(file_nmdb.as_ref(), &popts) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("dustctl: {e}");
                std::process::exit(1)
            }
        }
        return;
    }
    let Some(path) = args.get(1).cloned() else { fail(format!("{cmd}: missing <file>")) };

    let mut opts = Options::default();
    let mut hops = 1usize;
    let mut zone_size: Option<usize> = None;
    let mut sweep = false;
    let mut it = args.iter().skip(2);
    let numeric = |it: &mut dyn Iterator<Item = &String>, flag: &str| -> f64 {
        let v = it.next().unwrap_or_else(|| fail(format!("{flag} needs a value")));
        v.parse().unwrap_or_else(|_| fail(format!("{flag}: invalid number {v:?}")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--c-max" => opts.c_max = numeric(&mut it, "--c-max"),
            "--co-max" => opts.co_max = numeric(&mut it, "--co-max"),
            "--x-min" => opts.x_min = numeric(&mut it, "--x-min"),
            "--max-hop" => opts.max_hop = Some(numeric(&mut it, "--max-hop") as usize),
            "--enumerate" => opts.enumerate_paths = true,
            "--simplex" => opts.simplex = true,
            "--threads" => opts.threads = numeric(&mut it, "--threads") as usize,
            "--hops" => hops = numeric(&mut it, "--hops") as usize,
            "--zone-size" => zone_size = Some(numeric(&mut it, "--zone-size") as usize),
            "--sweep" => sweep = true,
            other => fail(format!("unknown option {other:?}")),
        }
    }

    let input = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(format!("cannot read {path:?}: {e}")));
    let nmdb = parse_nmdb(&input).unwrap_or_else(|e| fail(format!("{path}: {e}")));

    let result = match cmd.as_str() {
        "roles" => roles(&nmdb, &opts),
        "optimize" => cmd_optimize(&nmdb, &opts),
        "heuristic" => cmd_heuristic(&nmdb, &opts, hops),
        "zoned" => {
            let size = zone_size.unwrap_or_else(|| fail("zoned requires --zone-size N"));
            cmd_zoned(&nmdb, &opts, size, sweep)
        }
        "dot" => cmd_dot(&nmdb, &opts),
        other => fail(format!("unknown command {other:?}")),
    };
    match result {
        Ok(out) => print!("{out}"),
        // Solve-time failures (infeasible, hop starvation, bad thresholds)
        // exit 1 without the usage banner; usage errors exit 2 via fail().
        Err(e) => {
            eprintln!("dustctl: {e}");
            std::process::exit(1)
        }
    }
}
