//! Shared argument parsing for the simulation-backed `dustctl` commands.
//!
//! `sim`, `trace`, and `spans` accept the same run flags — the fault
//! profile (`--loss`/`--dup`/`--delay`/`--jitter`), the run shape
//! (`--duration`/`--seed`/`--engine`), and the reporting switches
//! (`--metrics`/`--metrics-json`/`--metrics-prom`/`--slo`) — so this
//! module owns that grammar in one place. Each command declares only its
//! extras here; the three parsers cannot drift apart because there is
//! exactly one.

use crate::commands::SimOptions;
use dust::sim::EngineKind;

/// Which simulation-backed subcommand is being parsed. Gates the
/// command-specific flags (`--sweep` and the report switches for `sim`,
/// `--full` for `trace`, `--flow`/`--phase` for `spans`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimCommandKind {
    /// `dustctl sim` — the chaos ladder with metrics/SLO reporting.
    Sim,
    /// `dustctl trace` — one run, trace census or full event log.
    Trace,
    /// `dustctl spans` — one run, causal span reconstruction.
    Spans,
}

impl SimCommandKind {
    /// Map a command word to its kind, `None` for non-sim commands.
    pub fn from_name(cmd: &str) -> Option<Self> {
        match cmd {
            "sim" => Some(SimCommandKind::Sim),
            "trace" => Some(SimCommandKind::Trace),
            "spans" => Some(SimCommandKind::Spans),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            SimCommandKind::Sim => "sim",
            SimCommandKind::Trace => "trace",
            SimCommandKind::Spans => "spans",
        }
    }
}

/// A fully parsed `sim`/`trace`/`spans` invocation: the shared
/// [`SimOptions`] plus each command's extras (unused extras stay at
/// their defaults).
#[derive(Debug, Clone)]
pub struct SimInvocation {
    /// The shared simulation options.
    pub opts: SimOptions,
    /// `trace --full`: stream the whole decoded event log.
    pub full: bool,
    /// `spans --flow N`: restrict the flow table to one transfer.
    pub flow: Option<u64>,
    /// `spans --phase NAME`: restrict the latency table to one phase.
    pub phase: Option<String>,
}

/// Parse the flags of one simulation-backed command. `args` excludes the
/// command word itself. Errors are plain messages; the caller decides
/// how to render them (the binary appends usage and exits 2).
pub fn parse_sim_invocation(
    kind: SimCommandKind,
    args: &[String],
) -> Result<SimInvocation, String> {
    let mut inv =
        SimInvocation { opts: SimOptions::default(), full: false, flow: None, phase: None };
    let s = &mut inv.opts;
    let mut it = args.iter();
    let text = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    let numeric = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<f64, String> {
        let v = text(it, flag)?;
        v.parse().map_err(|_| format!("{flag}: invalid number {v:?}"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            // -- shared by sim, trace, and spans --------------------------
            "--loss" => s.loss = numeric(&mut it, "--loss")?,
            "--dup" => s.dup = numeric(&mut it, "--dup")?,
            "--delay" => s.delay_ms = numeric(&mut it, "--delay")? as u64,
            "--jitter" => s.jitter_ms = numeric(&mut it, "--jitter")? as u64,
            "--duration" => {
                s.duration_ms = numeric(&mut it, "--duration")? as u64;
                s.duration_explicit = true;
            }
            "--seed" => s.seed = numeric(&mut it, "--seed")? as u64,
            "--engine" => s.engine = EngineKind::parse(&text(&mut it, "--engine")?)?,
            // -- sim only -------------------------------------------------
            "--scenario" if kind == SimCommandKind::Sim => {
                s.scenario = Some(text(&mut it, "--scenario")?)
            }
            "--sweep" if kind == SimCommandKind::Sim => s.sweep = true,
            "--profile" if kind == SimCommandKind::Sim => {
                s.profile = Some(text(&mut it, "--profile")?)
            }
            "--metrics" if kind == SimCommandKind::Sim => s.metrics = true,
            "--metrics-json" if kind == SimCommandKind::Sim => s.metrics_json = true,
            "--metrics-prom" if kind == SimCommandKind::Sim => s.metrics_prom = true,
            "--slo" if kind == SimCommandKind::Sim => s.slo = Some(text(&mut it, "--slo")?),
            "--postmortem" if kind == SimCommandKind::Sim => {
                s.postmortem = Some(text(&mut it, "--postmortem")?)
            }
            "--inject-breach" if kind == SimCommandKind::Sim => s.inject_breach = true,
            // -- trace / spans extras -------------------------------------
            "--full" if kind == SimCommandKind::Trace => inv.full = true,
            "--flow" if kind == SimCommandKind::Spans => {
                inv.flow = Some(numeric(&mut it, "--flow")? as u64)
            }
            "--phase" if kind == SimCommandKind::Spans => {
                inv.phase = Some(text(&mut it, "--phase")?)
            }
            other => return Err(format!("{}: unknown option {other:?}", kind.name())),
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let inv = parse_sim_invocation(SimCommandKind::Sim, &[]).unwrap();
        assert_eq!(inv.opts.duration_ms, 120_000);
        assert_eq!(inv.opts.engine, EngineKind::Event);
        assert!(!inv.full && inv.flow.is_none() && inv.phase.is_none());
    }

    #[test]
    fn shared_flags_parse_for_every_command() {
        for kind in [SimCommandKind::Sim, SimCommandKind::Trace, SimCommandKind::Spans] {
            let inv = parse_sim_invocation(
                kind,
                &argv("--loss 0.2 --dup 0.1 --delay 20 --jitter 100 --duration 60000 --seed 7"),
            )
            .unwrap();
            assert_eq!(inv.opts.loss, 0.2);
            assert_eq!(inv.opts.dup, 0.1);
            assert_eq!(inv.opts.delay_ms, 20);
            assert_eq!(inv.opts.jitter_ms, 100);
            assert_eq!(inv.opts.duration_ms, 60_000);
            assert_eq!(inv.opts.seed, 7);
        }
    }

    #[test]
    fn engine_flag_selects_the_tick_core() {
        let inv = parse_sim_invocation(SimCommandKind::Trace, &argv("--engine tick")).unwrap();
        assert_eq!(inv.opts.engine, EngineKind::Tick);
        let err = parse_sim_invocation(SimCommandKind::Sim, &argv("--engine warp")).unwrap_err();
        assert!(err.contains("unknown engine"), "{err}");
    }

    #[test]
    fn sim_only_flags_are_rejected_elsewhere() {
        assert!(parse_sim_invocation(SimCommandKind::Sim, &argv("--sweep")).is_ok());
        let err = parse_sim_invocation(SimCommandKind::Trace, &argv("--sweep")).unwrap_err();
        assert!(err.contains("trace: unknown option"), "{err}");
        let err = parse_sim_invocation(SimCommandKind::Spans, &argv("--metrics-json")).unwrap_err();
        assert!(err.contains("spans: unknown option"), "{err}");
        let err =
            parse_sim_invocation(SimCommandKind::Trace, &argv("--profile p.txt")).unwrap_err();
        assert!(err.contains("trace: unknown option"), "{err}");
    }

    #[test]
    fn profile_flag_parses_for_sim() {
        let inv =
            parse_sim_invocation(SimCommandKind::Sim, &argv("--profile prof.folded")).unwrap();
        assert_eq!(inv.opts.profile.as_deref(), Some("prof.folded"));
    }

    #[test]
    fn command_extras_parse() {
        let inv = parse_sim_invocation(SimCommandKind::Trace, &argv("--full")).unwrap();
        assert!(inv.full);
        let inv =
            parse_sim_invocation(SimCommandKind::Spans, &argv("--flow 3 --phase offer")).unwrap();
        assert_eq!(inv.flow, Some(3));
        assert_eq!(inv.phase.as_deref(), Some("offer"));
    }

    #[test]
    fn missing_and_malformed_values_are_loud() {
        let err = parse_sim_invocation(SimCommandKind::Sim, &argv("--loss")).unwrap_err();
        assert_eq!(err, "--loss needs a value");
        let err = parse_sim_invocation(SimCommandKind::Sim, &argv("--seed banana")).unwrap_err();
        assert!(err.contains("invalid number"), "{err}");
    }
}
