//! The `dustctl` network-state file format.
//!
//! A line-based plain-text description of a network snapshot — the NMDB a
//! DUST-Manager would hold — easy to emit from scripts and diff in git:
//!
//! ```text
//! # comments and blank lines are ignored
//! node <id> <utilization%> <data_mb> [nooffload]
//! edge <a> <b> <capacity_mbps> <utilization 0..1>
//! ```
//!
//! Node ids must be dense `0..n` (any order). Every referenced endpoint
//! must be declared. Parse errors carry the offending line number.

use dust::prelude::*;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parse a network-state file into an [`Nmdb`].
pub fn parse_nmdb(input: &str) -> Result<Nmdb, ParseError> {
    struct NodeDecl {
        utilization: f64,
        data_mb: f64,
        capable: bool,
    }
    let mut nodes: Vec<Option<NodeDecl>> = Vec::new();
    let mut edges: Vec<(u32, u32, f64, f64)> = Vec::new();

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("node") => {
                let fields: Vec<&str> = parts.collect();
                if fields.len() < 3 || fields.len() > 4 {
                    return Err(err(
                        lineno,
                        "expected: node <id> <utilization%> <data_mb> [nooffload]",
                    ));
                }
                let id: usize = fields[0]
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid node id {:?}", fields[0])))?;
                let utilization: f64 = fields[1]
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid utilization {:?}", fields[1])))?;
                if !(0.0..=100.0).contains(&utilization) {
                    return Err(err(lineno, format!("utilization {utilization} outside [0,100]")));
                }
                let data_mb: f64 = fields[2]
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid data_mb {:?}", fields[2])))?;
                if !(data_mb.is_finite() && data_mb >= 0.0) {
                    return Err(err(lineno, format!("data_mb {data_mb} must be >= 0")));
                }
                let capable = match fields.get(3) {
                    None => true,
                    Some(&"nooffload") => false,
                    Some(other) => return Err(err(lineno, format!("unknown node flag {other:?}"))),
                };
                if nodes.len() <= id {
                    nodes.resize_with(id + 1, || None);
                }
                if nodes[id].is_some() {
                    return Err(err(lineno, format!("duplicate node {id}")));
                }
                nodes[id] = Some(NodeDecl { utilization, data_mb, capable });
            }
            Some("edge") => {
                let fields: Vec<&str> = parts.collect();
                if fields.len() != 4 {
                    return Err(err(
                        lineno,
                        "expected: edge <a> <b> <capacity_mbps> <utilization 0..1>",
                    ));
                }
                let a: u32 = fields[0]
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid endpoint {:?}", fields[0])))?;
                let b: u32 = fields[1]
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid endpoint {:?}", fields[1])))?;
                if a == b {
                    return Err(err(lineno, "self-loop edges are not allowed"));
                }
                let cap: f64 = fields[2]
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid capacity {:?}", fields[2])))?;
                if !(cap.is_finite() && cap > 0.0) {
                    return Err(err(lineno, format!("capacity {cap} must be positive")));
                }
                let util: f64 = fields[3].parse().map_err(|_| {
                    err(lineno, format!("invalid link utilization {:?}", fields[3]))
                })?;
                if !(0.0..=1.0).contains(&util) {
                    return Err(err(lineno, format!("link utilization {util} outside [0,1]")));
                }
                edges.push((a, b, cap, util));
            }
            Some(other) => {
                return Err(err(lineno, format!("unknown directive {other:?}")));
            }
            None => unreachable!("empty lines skipped above"),
        }
    }

    // dense-ids check
    let mut states = Vec::with_capacity(nodes.len());
    for (id, decl) in nodes.iter().enumerate() {
        match decl {
            Some(d) => {
                let s = NodeState::new(d.utilization, d.data_mb);
                states.push(if d.capable { s } else { s.non_offloading() });
            }
            None => return Err(err(0, format!("node ids must be dense: node {id} is missing"))),
        }
    }
    if states.is_empty() {
        return Err(err(0, "no nodes declared"));
    }
    let mut g = Graph::with_nodes(states.len());
    for (a, b, cap, util) in edges {
        if a as usize >= states.len() || b as usize >= states.len() {
            return Err(err(0, format!("edge {a}-{b} references an undeclared node")));
        }
        g.add_edge(NodeId(a), NodeId(b), Link::new(cap, util));
    }
    Ok(Nmdb::new(g, states))
}

/// Render an [`Nmdb`] back into the file format (round-trippable).
pub fn render_nmdb(nmdb: &Nmdb) -> String {
    let mut out = String::from("# DUST network state\n");
    for n in nmdb.graph.nodes() {
        let s = nmdb.state(n);
        out.push_str(&format!(
            "node {} {} {}{}\n",
            n.0,
            s.utilization,
            s.data_mb,
            if s.offload_capable { "" } else { " nooffload" }
        ));
    }
    for e in nmdb.graph.edges() {
        out.push_str(&format!(
            "edge {} {} {} {}\n",
            e.a.0, e.b.0, e.link.capacity_mbps, e.link.utilization
        ));
    }
    out
}

/// Render chaos-run results as an aligned table (`dustctl sim`): one row
/// per loss rate with delivery counters, retry work, convergence time,
/// and the two invariant columns.
pub fn render_chaos(rows: &[ChaosResult]) -> String {
    let mut out = String::from(
        "loss%   sent  dropped  dup  retries  abandoned  transfers  reps  first-offload  agents  ledgers\n",
    );
    for r in rows {
        let first = match r.first_transfer_ms {
            Some(ms) => format!("{:.1}s", ms as f64 / 1000.0),
            None => "never".to_string(),
        };
        out.push_str(&format!(
            "{:>5.1} {:>6} {:>8} {:>4} {:>8} {:>10} {:>10} {:>5} {:>14} {:>4}/{:<2} {:>8}\n",
            r.loss * 100.0,
            r.msgs_sent,
            r.msgs_dropped,
            r.msgs_duplicated,
            r.offer_retries,
            r.offers_abandoned,
            r.transfers,
            r.replicas,
            first,
            r.agents_present,
            r.agents_expected,
            if r.ledgers_consistent { "ok" } else { "DIVERGED" },
        ));
    }
    out
}

/// A documented sample file (the Fig. 4 topology) for `dustctl example`.
pub fn example_file() -> String {
    "# DUST network state — the paper's Fig. 4 example\n\
     # node <id> <utilization%> <data_mb> [nooffload]\n\
     node 0 92 150        # S1: Busy (over C_max = 80)\n\
     node 1 25 10         # S2: Offload-candidate\n\
     node 2 65 10         # S3: relay\n\
     node 3 65 10         # S4: relay\n\
     node 4 65 10         # S5: relay\n\
     node 5 25 10         # S6: Offload-candidate\n\
     node 6 65 10         # S7: standalone management node (no links in Fig. 4's route list)\n\
     # edge <a> <b> <capacity_mbps> <utilization 0..1>\n\
     edge 0 2 10000 0.5   # e1\n\
     edge 2 1 10000 0.5   # e2\n\
     edge 2 3 10000 0.5   # e3\n\
     edge 3 1 10000 0.5   # e4\n\
     edge 3 4 10000 0.5   # e5\n\
     edge 4 5 10000 0.5   # e6\n\
     edge 2 5 10000 0.5   # e7\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_parses_and_roundtrips() {
        let nmdb = parse_nmdb(&example_file()).unwrap();
        assert_eq!(nmdb.graph.node_count(), 7);
        assert_eq!(nmdb.graph.edge_count(), 7);
        assert_eq!(nmdb.state(NodeId(0)).utilization, 92.0);
        // round trip
        let rendered = render_nmdb(&nmdb);
        let again = parse_nmdb(&rendered).unwrap();
        assert_eq!(again.states, nmdb.states);
        assert_eq!(again.graph.edge_count(), nmdb.graph.edge_count());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nmdb = parse_nmdb(
            "\n# hi\nnode 0 10 1\n  # indented comment\nnode 1 20 1\nedge 0 1 100 0.5\n",
        )
        .unwrap();
        assert_eq!(nmdb.graph.node_count(), 2);
    }

    #[test]
    fn nooffload_flag() {
        let nmdb = parse_nmdb("node 0 10 1 nooffload\n").unwrap();
        assert!(!nmdb.state(NodeId(0)).offload_capable);
    }

    #[test]
    fn error_carries_line_number() {
        let e = parse_nmdb("node 0 10 1\nnode 1 999 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("outside [0,100]"), "{e}");
    }

    #[test]
    fn rejects_sparse_ids() {
        let e = parse_nmdb("node 0 10 1\nnode 2 10 1\n").unwrap_err();
        assert!(e.message.contains("dense"), "{e}");
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        assert!(parse_nmdb("node 0 10 1\nnode 0 20 1\n")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse_nmdb("nde 0 10 1\n").unwrap_err().message.contains("unknown directive"));
        assert!(parse_nmdb("node 0 10 1 wat\n").unwrap_err().message.contains("unknown node flag"));
    }

    #[test]
    fn rejects_bad_edges() {
        let base = "node 0 10 1\nnode 1 10 1\n";
        assert!(parse_nmdb(&format!("{base}edge 0 0 100 0.5\n"))
            .unwrap_err()
            .message
            .contains("self-loop"));
        assert!(parse_nmdb(&format!("{base}edge 0 5 100 0.5\n"))
            .unwrap_err()
            .message
            .contains("undeclared"));
        assert!(parse_nmdb(&format!("{base}edge 0 1 -3 0.5\n"))
            .unwrap_err()
            .message
            .contains("positive"));
        assert!(parse_nmdb(&format!("{base}edge 0 1 100 1.5\n"))
            .unwrap_err()
            .message
            .contains("outside [0,1]"));
        assert!(parse_nmdb(&format!("{base}edge 0 1 100\n"))
            .unwrap_err()
            .message
            .contains("expected: edge"));
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_nmdb("# only a comment\n").unwrap_err().message.contains("no nodes"));
    }
}
