//! `dustctl` internals: the network-state file format and the subcommand
//! implementations, exposed as a library so they are unit-testable.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod format;
