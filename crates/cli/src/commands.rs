//! `dustctl` subcommand implementations, testable independently of the
//! process entry point: each takes a parsed [`Nmdb`] plus options and
//! returns the text to print.

use dust::core::zone_by_bfs;
use dust::prelude::*;

/// Threshold/routing options shared by all commands.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Busy threshold `C_max`.
    pub c_max: f64,
    /// Candidate threshold `CO_max`.
    pub co_max: f64,
    /// Minimum utilization `x_min`.
    pub x_min: f64,
    /// Hop bound for controllable routes.
    pub max_hop: Option<usize>,
    /// Use the paper-faithful path enumeration instead of the fast DP.
    pub enumerate_paths: bool,
    /// Use the general simplex instead of the transportation solver.
    pub simplex: bool,
    /// Worker threads pricing `T_rmin` rows (0 = one per core).
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        let d = DustConfig::paper_defaults();
        Options {
            c_max: d.c_max,
            co_max: d.co_max,
            x_min: d.x_min,
            max_hop: None,
            enumerate_paths: false,
            simplex: false,
            threads: 0,
        }
    }
}

impl Options {
    /// Materialize the [`DustConfig`], validating thresholds.
    pub fn config(&self) -> Result<DustConfig, String> {
        let cfg = DustConfig::paper_defaults()
            .with_thresholds(self.c_max, self.co_max, self.x_min)
            .with_max_hop(self.max_hop)
            .with_engine(if self.enumerate_paths {
                PathEngine::Enumerate
            } else {
                PathEngine::HopBoundedDp
            });
        cfg.validate()?;
        Ok(cfg)
    }

    fn backend(&self) -> SolverBackend {
        if self.simplex {
            SolverBackend::Simplex
        } else {
            SolverBackend::Transportation
        }
    }

    /// Assemble a [`PlacementRequest`] carrying these options.
    fn request<'a>(&self, nmdb: &'a Nmdb, cfg: &DustConfig) -> PlacementRequest<'a> {
        PlacementRequest::new(nmdb, cfg).backend(self.backend()).threads(self.threads)
    }
}

/// Options for `dustctl sim` (the chaos testbed run).
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Drop probability applied in both directions.
    pub loss: f64,
    /// Duplication probability applied in both directions.
    pub dup: f64,
    /// Base propagation delay per message, ms.
    pub delay_ms: u64,
    /// Extra uniform delay in `0..=jitter`, ms (reorders when large).
    pub jitter_ms: u64,
    /// Simulated duration, ms.
    pub duration_ms: u64,
    /// Master seed.
    pub seed: u64,
    /// Sweep the canned loss ladder instead of one `--loss` run.
    pub sweep: bool,
    /// Append the recorded metrics in text form.
    pub metrics: bool,
    /// Append the recorded metrics (plus trace digest) as JSON — stable
    /// byte-for-byte per seed, so CI can diff two runs.
    pub metrics_json: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            loss: 0.0,
            dup: 0.0,
            delay_ms: 0,
            jitter_ms: 0,
            duration_ms: 120_000,
            seed: 0,
            sweep: false,
            metrics: false,
            metrics_json: false,
        }
    }
}

impl SimOptions {
    fn validate(&self) -> Result<(), String> {
        for (flag, p) in [("--loss", self.loss), ("--dup", self.dup)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{flag} must lie in [0, 1], got {p}"));
            }
        }
        if self.duration_ms == 0 {
            return Err("--duration must be positive".into());
        }
        Ok(())
    }

    /// The fault ladder this invocation runs: the canned sweep or the
    /// single profile assembled from the flags.
    fn fault_ladder(&self) -> Vec<FaultConfig> {
        if self.sweep {
            [0.0, 0.05, 0.1, 0.2, 0.4]
                .iter()
                .map(|&loss| {
                    FaultConfig::symmetric(FaultProfile {
                        drop: loss,
                        duplicate: loss / 2.0,
                        delay_ms: 20,
                        jitter_ms: 100,
                    })
                })
                .collect()
        } else {
            vec![FaultConfig::symmetric(FaultProfile {
                drop: self.loss,
                duplicate: self.dup,
                delay_ms: self.delay_ms,
                jitter_ms: self.jitter_ms,
            })]
        }
    }
}

/// `dustctl sim`: run the Fig. 5 testbed under an imperfect control plane
/// and report what the retry/expiry machinery did about it. Exits nonzero
/// (via `Err`) if a conservation invariant breaks — the whole point of
/// the command is that it never should.
pub fn cmd_sim(opts: &SimOptions) -> Result<String, String> {
    opts.validate()?;
    let observed = opts.metrics || opts.metrics_json;
    let mut results: Vec<ChaosResult> = Vec::new();
    let mut recorders: Vec<ObsHandle> = Vec::new();
    for faults in opts.fault_ladder() {
        let obs = if observed { ObsHandle::recording(opts.seed) } else { ObsHandle::disabled() };
        results.push(chaos_with_faults_observed(faults, opts.duration_ms, opts.seed, obs.clone()));
        recorders.push(obs);
    }
    let mut out = format!(
        "testbed chaos run: {:.0}s simulated, seed {}\n\n{}",
        opts.duration_ms as f64 / 1000.0,
        opts.seed,
        crate::format::render_chaos(&results)
    );
    for r in &results {
        if r.agents_present != r.agents_expected {
            return Err(format!(
                "loss {:.0}%: {} of {} monitor agents lost — conservation broken",
                r.loss * 100.0,
                r.agents_expected - r.agents_present.min(r.agents_expected),
                r.agents_expected
            ));
        }
        if !r.ledgers_consistent {
            return Err(format!("loss {:.0}%: ledgers diverged", r.loss * 100.0));
        }
        if r.unconfirmed_stale > 0 {
            return Err(format!(
                "loss {:.0}%: {} unconfirmed offers leaked past the retry budget",
                r.loss * 100.0,
                r.unconfirmed_stale
            ));
        }
    }
    out.push_str("\ninvariants: agents conserved, ledgers consistent, no leaked offers\n");
    for (r, obs) in results.iter().zip(&recorders) {
        if opts.metrics {
            let m = obs.metrics().expect("recording handle");
            out.push_str(&format!(
                "\n-- metrics (loss {:.0}%, seed {}, digest {:016x}) --\n{}",
                r.loss * 100.0,
                opts.seed,
                obs.digest().expect("recording handle"),
                m.to_text()
            ));
        }
        if opts.metrics_json {
            let m = obs.metrics().expect("recording handle");
            out.push_str(&format!(
                "{{\"loss\":{},\"seed\":{},\"digest\":\"{:016x}\",\"metrics\":{}}}\n",
                r.loss,
                opts.seed,
                obs.digest().expect("recording handle"),
                m.to_json()
            ));
        }
    }
    Ok(out)
}

/// `dustctl trace`: run one chaos scenario with the trace recorder on
/// and print the event census plus the run's digest — or, with `full`,
/// the entire decoded event log. Two invocations with the same flags
/// print byte-identical output; that is the feature.
pub fn cmd_trace(opts: &SimOptions, full: bool) -> Result<String, String> {
    opts.validate()?;
    if opts.sweep {
        return Err("trace records a single run; drop --sweep".into());
    }
    let obs = ObsHandle::recording(opts.seed);
    let faults = opts.fault_ladder().remove(0);
    let r = chaos_with_faults_observed(faults, opts.duration_ms, opts.seed, obs.clone());
    let trace = obs.trace_snapshot().expect("recording handle");
    if full {
        return Ok(trace.to_text());
    }
    let mut by_kind: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for e in trace.entries() {
        *by_kind.entry(e.event.kind()).or_insert(0) += 1;
    }
    let mut out = format!(
        "trace: seed {}, loss {:.0}%, {} events, digest {:016x}\n",
        opts.seed,
        r.loss * 100.0,
        trace.len(),
        trace.digest()
    );
    for (kind, n) in by_kind {
        out.push_str(&format!("  {kind:<18} {n}\n"));
    }
    Ok(out)
}

fn route_string(a: &Assignment) -> String {
    match &a.route {
        Some(r) => r.nodes.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join("→"),
        None => "?".into(),
    }
}

/// `dustctl roles`: classify every node.
pub fn roles(nmdb: &Nmdb, opts: &Options) -> Result<String, String> {
    let cfg = opts.config()?;
    let mut out = format!(
        "thresholds: C_max {} / CO_max {} / x_min {} (delta_io {:.2})\n",
        cfg.c_max,
        cfg.co_max,
        cfg.x_min,
        cfg.delta_io()
    );
    for n in nmdb.graph.nodes() {
        let s = nmdb.state(n);
        let role = nmdb.role(n, &cfg);
        let extra = match role {
            Role::Busy => format!("  Cs = {:.1}", nmdb.cs(n, &cfg)),
            Role::OffloadCandidate => format!("  Cd = {:.1}", nmdb.cd(n, &cfg)),
            _ => String::new(),
        };
        out.push_str(&format!(
            "node {:>4}  util {:6.1}%  D {:8.1} Mb  {:?}{}\n",
            n.0, s.utilization, s.data_mb, role, extra
        ));
    }
    out.push_str(&format!(
        "totals: Cs = {:.1}, Cd = {:.1}{}\n",
        nmdb.total_cs(&cfg),
        nmdb.total_cd(&cfg),
        if nmdb.total_cs(&cfg) > nmdb.total_cd(&cfg) { "  (capacity precheck FAILS)" } else { "" }
    ));
    Ok(out)
}

/// `dustctl optimize`: the exact placement, with routes.
///
/// Infeasible placements surface as `Err` (typed by [`DustError`]'s
/// message) so the process exits nonzero, letting scripts branch on the
/// outcome.
pub fn cmd_optimize(nmdb: &Nmdb, opts: &Options) -> Result<String, String> {
    let cfg = opts.config()?;
    let report = opts.request(nmdb, &cfg).solve().map_err(|e| match e {
        DustError::Infeasible => {
            format!("{e}; raise CO_max / max-hop, or add capacity")
        }
        DustError::NoPathWithinHops => format!("{e}; raise --max-hop"),
        other => other.to_string(),
    })?;
    let p = report.as_lp().expect("default strategy is the exact LP");
    let mut out = format!("status: {:?}\n", p.status);
    match p.status {
        PlacementStatus::Optimal => {
            out.push_str(&format!(
                "beta = {:.6} s·%, total offloaded = {:.1}%, mean hops = {}\n",
                p.beta,
                p.total_offloaded(),
                p.mean_hops().map_or("n/a".into(), |h| format!("{h:.2}")),
            ));
            for a in &p.assignments {
                out.push_str(&format!(
                    "  move {:6.2}% from {} to {}  (T_rmin {:.6}s, route {})\n",
                    a.amount,
                    a.from.0,
                    a.to.0,
                    a.t_rmin,
                    route_string(a)
                ));
            }
            // capacity worth buying: most negative shadow prices first
            let mut prices = p.shadow_prices.clone();
            prices.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let binding: Vec<String> = prices
                .iter()
                .take_while(|(_, v)| *v < -1e-12)
                .take(3)
                .map(|(n, v)| format!("node {} ({:+.5})", n.0, v))
                .collect();
            if !binding.is_empty() {
                out.push_str(&format!(
                    "  capacity worth upgrading (shadow prices): {}\n",
                    binding.join(", ")
                ));
            }
        }
        PlacementStatus::Infeasible => {
            out.push_str("no feasible placement: raise CO_max / max-hop, or add capacity\n");
        }
        PlacementStatus::NoBusyNodes => {
            out.push_str("no node exceeds C_max; nothing to offload\n");
        }
    }
    Ok(out)
}

/// `dustctl heuristic`: Algorithm 1 (optionally with extended reach).
pub fn cmd_heuristic(nmdb: &Nmdb, opts: &Options, hops: usize) -> Result<String, String> {
    let cfg = opts.config()?;
    if hops == 0 {
        return Err("--hops must be at least 1".into());
    }
    let report =
        opts.request(nmdb, &cfg).heuristic_hops(hops).solve().map_err(|e| e.to_string())?;
    let h = report.as_heuristic().expect("heuristic strategy was configured");
    let mut out = format!(
        "placed {:.1} of {:.1} capacity-% within {} hop(s); HFR = {:.2}%\n",
        h.total_cs - h.total_cse,
        h.total_cs,
        hops,
        h.hfr_percent()
    );
    for a in &h.assignments {
        out.push_str(&format!(
            "  move {:6.2}% from {} to {}  (Tr {:.6}s, route {})\n",
            a.amount,
            a.from.0,
            a.to.0,
            a.t_rmin,
            route_string(a)
        ));
    }
    for (n, r) in &h.residual {
        out.push_str(&format!("  UNPLACED {:.2}% on node {}\n", r, n.0));
    }
    Ok(out)
}

/// `dustctl zoned`: per-zone placement with optional cross-zone sweep.
pub fn cmd_zoned(
    nmdb: &Nmdb,
    opts: &Options,
    zone_size: usize,
    sweep: bool,
) -> Result<String, String> {
    let cfg = opts.config()?;
    if zone_size == 0 {
        return Err("--zone-size must be at least 1".into());
    }
    let zoning = zone_by_bfs(&nmdb.graph, zone_size);
    let report =
        opts.request(nmdb, &cfg).zoned(&zoning, sweep).solve().map_err(|e| e.to_string())?;
    let z = report.as_zoned().expect("zoned strategy was configured");
    let total_cs = nmdb.total_cs(&cfg);
    let mut out = format!(
        "{} zones (max size {}), {} active; beta = {:.6}; unplaced = {:.1}% of Cs\n\
         latency bound (slowest zone) = {:.2?}, sequential total = {:.2?}\n",
        zoning.zone_count(),
        zoning.max_zone_size(),
        z.active_zones,
        z.beta,
        z.residual_rate_percent(total_cs),
        z.max_zone_time,
        z.total_time,
    );
    for a in &z.assignments {
        out.push_str(&format!(
            "  move {:6.2}% from {} to {}  (zone {} → {})\n",
            a.amount,
            a.from.0,
            a.to.0,
            zoning.zone_of[a.from.index()],
            zoning.zone_of[a.to.index()],
        ));
    }
    for (n, r) in &z.final_residual {
        out.push_str(&format!("  UNPLACED {:.2}% on node {}\n", r, n.0));
    }
    Ok(out)
}

/// `dustctl dot`: render the network (roles colored, busy nodes red,
/// candidates green) and the optimizer's chosen routes as Graphviz.
pub fn cmd_dot(nmdb: &Nmdb, opts: &Options) -> Result<String, String> {
    use dust::topology::{placement_to_dot, NodeStyle};
    let cfg = opts.config()?;
    let styles: Vec<NodeStyle> = nmdb
        .graph
        .nodes()
        .map(|n| {
            let s = nmdb.state(n);
            let fill = match nmdb.role(n, &cfg) {
                Role::Busy => Some("tomato".to_string()),
                Role::OffloadCandidate => Some("palegreen".to_string()),
                Role::Neutral => Some("lightyellow".to_string()),
                Role::NonOffloading => Some("lightgray".to_string()),
            };
            NodeStyle { label: Some(format!("{:.0}%", s.utilization)), fill }
        })
        .collect();
    // run_lp keeps the infeasible outcome as data: the graph still renders,
    // just without a route overlay.
    let p = opts.request(nmdb, &cfg).run_lp().map_err(|e| e.to_string())?;
    let routes: Vec<_> = p.assignments.iter().filter_map(|a| a.route.clone()).collect();
    Ok(placement_to_dot(&nmdb.graph, "dust", &styles, &routes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{example_file, parse_nmdb};

    fn fig4() -> Nmdb {
        parse_nmdb(&example_file()).unwrap()
    }

    #[test]
    fn roles_lists_everything() {
        let out = roles(&fig4(), &Options::default()).unwrap();
        assert!(out.contains("Busy"));
        assert!(out.contains("OffloadCandidate"));
        assert!(out.contains("Cs = 12.0"));
        assert!(out.contains("totals:"));
    }

    #[test]
    fn optimize_prints_route() {
        let out = cmd_optimize(&fig4(), &Options::default()).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("move  12.00% from 0"), "{out}");
        assert!(out.contains("route 0→2→"), "{out}");
    }

    #[test]
    fn heuristic_reports_failure_on_fig4() {
        // S1's only neighbor is the relay S3 (65 %) — one hop finds nothing
        let out = cmd_heuristic(&fig4(), &Options::default(), 1).unwrap();
        assert!(out.contains("HFR = 100.00%"), "{out}");
        assert!(out.contains("UNPLACED"), "{out}");
        // two hops reach S2/S6
        let out2 = cmd_heuristic(&fig4(), &Options::default(), 2).unwrap();
        assert!(out2.contains("HFR = 0.00%"), "{out2}");
    }

    #[test]
    fn zoned_single_zone_matches_optimize() {
        // S7 has no links, so BFS zoning yields the main zone plus S7 alone
        let out = cmd_zoned(&fig4(), &Options::default(), 100, false).unwrap();
        assert!(out.contains("2 zones"), "{out}");
        assert!(out.contains("unplaced = 0.0%"), "{out}");
    }

    #[test]
    fn zoned_small_zones_need_sweep() {
        // zones of 2: S1's zone likely has no candidate → sweep rescues
        let no_sweep = cmd_zoned(&fig4(), &Options::default(), 2, false).unwrap();
        let sweep = cmd_zoned(&fig4(), &Options::default(), 2, true).unwrap();
        assert!(sweep.contains("unplaced = 0.0%"), "{sweep}");
        let _ = no_sweep;
    }

    #[test]
    fn dot_renders_roles_and_routes() {
        let out = cmd_dot(&fig4(), &Options::default()).unwrap();
        assert!(out.starts_with("graph dust {"), "{out}");
        assert!(out.contains("tomato"), "busy node colored");
        assert!(out.contains("palegreen"), "candidates colored");
        assert!(out.contains("color=red"), "route overlay present");
    }

    #[test]
    fn invalid_options_surface_errors() {
        let o = Options { co_max: 95.0, ..Default::default() }; // co_max above c_max
        assert!(roles(&fig4(), &o).is_err());
        assert!(cmd_heuristic(&fig4(), &Options::default(), 0).is_err());
        assert!(cmd_zoned(&fig4(), &Options::default(), 0, false).is_err());
    }

    #[test]
    fn simplex_and_enumerate_flags_work() {
        let o = Options { simplex: true, enumerate_paths: true, ..Default::default() };
        let out = cmd_optimize(&fig4(), &o).unwrap();
        assert!(out.contains("status: Optimal"));
    }

    #[test]
    fn sim_lossy_run_reports_invariants() {
        let o = SimOptions {
            loss: 0.2,
            dup: 0.1,
            delay_ms: 20,
            jitter_ms: 100,
            duration_ms: 60_000,
            seed: 17,
            ..Default::default()
        };
        let out = cmd_sim(&o).unwrap();
        assert!(out.contains("loss%"), "{out}");
        assert!(out.contains("20.0"), "{out}");
        assert!(out.contains("invariants: agents conserved"), "{out}");
    }

    #[test]
    fn sim_sweep_emits_one_row_per_loss_rate() {
        let o = SimOptions { sweep: true, duration_ms: 30_000, seed: 3, ..Default::default() };
        let out = cmd_sim(&o).unwrap();
        // header + five ladder rows + trailing invariant line
        assert_eq!(out.lines().filter(|l| l.ends_with("ok")).count(), 5, "{out}");
    }

    #[test]
    fn sim_metrics_json_is_byte_identical_per_seed() {
        let o = SimOptions {
            loss: 0.2,
            dup: 0.1,
            delay_ms: 20,
            jitter_ms: 100,
            duration_ms: 30_000,
            seed: 23,
            metrics_json: true,
            ..Default::default()
        };
        let a = cmd_sim(&o).unwrap();
        let b = cmd_sim(&o).unwrap();
        assert_eq!(a, b, "metrics JSON must be reproducible byte-for-byte");
        assert!(a.contains("\"digest\":\""), "{a}");
        assert!(a.contains("proto.offers_sent"), "{a}");
    }

    #[test]
    fn sim_metrics_text_includes_transport_counters() {
        let o = SimOptions {
            loss: 0.2,
            duration_ms: 30_000,
            seed: 5,
            metrics: true,
            ..Default::default()
        };
        let out = cmd_sim(&o).unwrap();
        assert!(out.contains("-- metrics"), "{out}");
        assert!(out.contains("sim.transport.to_manager.sent"), "{out}");
        assert!(out.contains("hist lp."), "solver histograms must record: {out}");
    }

    #[test]
    fn trace_census_is_reproducible_and_full_dump_carries_digest() {
        let o = SimOptions { loss: 0.2, duration_ms: 30_000, seed: 7, ..Default::default() };
        let a = cmd_trace(&o, false).unwrap();
        let b = cmd_trace(&o, false).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("digest"), "{a}");
        assert!(a.contains("Offer"), "{a}");
        let full = cmd_trace(&o, true).unwrap();
        let digest_line = full.lines().last().unwrap();
        assert!(digest_line.starts_with("digest "), "{digest_line}");
        assert!(cmd_trace(&SimOptions { sweep: true, ..o }, false).is_err());
    }

    #[test]
    fn sim_rejects_bad_probabilities() {
        assert!(cmd_sim(&SimOptions { loss: 1.5, ..Default::default() }).is_err());
        assert!(cmd_sim(&SimOptions { dup: -0.1, ..Default::default() }).is_err());
        assert!(cmd_sim(&SimOptions { duration_ms: 0, ..Default::default() }).is_err());
    }
}
