//! `dustctl` subcommand implementations, testable independently of the
//! process entry point: each takes a parsed [`Nmdb`] plus options and
//! returns the text to print.

use dust::core::zone_by_bfs;
use dust::prelude::*;

/// Threshold/routing options shared by all commands.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Busy threshold `C_max`.
    pub c_max: f64,
    /// Candidate threshold `CO_max`.
    pub co_max: f64,
    /// Minimum utilization `x_min`.
    pub x_min: f64,
    /// Hop bound for controllable routes.
    pub max_hop: Option<usize>,
    /// Use the paper-faithful path enumeration instead of the fast DP.
    pub enumerate_paths: bool,
    /// Use the general simplex instead of the transportation solver.
    pub simplex: bool,
    /// Worker threads pricing `T_rmin` rows (0 = one per core).
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        let d = DustConfig::paper_defaults();
        Options {
            c_max: d.c_max,
            co_max: d.co_max,
            x_min: d.x_min,
            max_hop: None,
            enumerate_paths: false,
            simplex: false,
            threads: 0,
        }
    }
}

impl Options {
    /// Materialize the [`DustConfig`], validating thresholds.
    pub fn config(&self) -> Result<DustConfig, String> {
        let cfg = DustConfig::paper_defaults()
            .with_thresholds(self.c_max, self.co_max, self.x_min)
            .with_max_hop(self.max_hop)
            .with_engine(if self.enumerate_paths {
                PathEngine::Enumerate
            } else {
                PathEngine::HopBoundedDp
            });
        cfg.validate()?;
        Ok(cfg)
    }

    fn backend(&self) -> SolverBackend {
        if self.simplex {
            SolverBackend::Simplex
        } else {
            SolverBackend::Transportation
        }
    }

    /// Assemble a [`PlacementRequest`] carrying these options.
    fn request<'a>(&self, nmdb: &'a Nmdb, cfg: &DustConfig) -> PlacementRequest<'a> {
        PlacementRequest::new(nmdb, cfg).backend(self.backend()).threads(self.threads)
    }
}

/// Options for `dustctl sim` (the chaos testbed run).
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Drop probability applied in both directions.
    pub loss: f64,
    /// Duplication probability applied in both directions.
    pub dup: f64,
    /// Base propagation delay per message, ms.
    pub delay_ms: u64,
    /// Extra uniform delay in `0..=jitter`, ms (reorders when large).
    pub jitter_ms: u64,
    /// Simulated duration, ms.
    pub duration_ms: u64,
    /// Master seed.
    pub seed: u64,
    /// Sweep the canned loss ladder instead of one `--loss` run.
    pub sweep: bool,
    /// Append the recorded metrics in text form.
    pub metrics: bool,
    /// Append the recorded metrics (plus trace digest) as JSON — stable
    /// byte-for-byte per seed, so CI can diff two runs.
    pub metrics_json: bool,
    /// Append the metrics as a Prometheus-style text exposition.
    pub metrics_prom: bool,
    /// SLO spec evaluated online during each run, e.g.
    /// `convergence<=15000,retransmit_rate<=0.25`. Any breach makes
    /// [`cmd_sim`] report `slo_breached` so `main` can exit 1.
    pub slo: Option<String>,
    /// Where to write the flight-recorder post-mortem dump if a sim
    /// invariant breaks (turns the recorder on even without --metrics).
    pub postmortem: Option<String>,
    /// Deliberately corrupt the first run's agent census after the fact
    /// so the invariant check (and post-mortem path) demonstrably fires.
    pub inject_breach: bool,
    /// Which simulation core runs the scenario. The default event core
    /// and the legacy tick core produce byte-identical output for the
    /// same flags; `--engine tick` exists to prove it.
    pub engine: EngineKind,
    /// Run a named registry scenario instead of the chaos ladder
    /// (`--scenario help` lists the registry). Mutually exclusive with
    /// the fault flags, `--sweep`, and `--inject-breach`.
    pub scenario: Option<String>,
    /// True when `--duration` was passed explicitly — a scenario run
    /// otherwise uses the entry's own default duration.
    pub duration_explicit: bool,
    /// Write the hierarchical wall-clock profile (folded stacks plus the
    /// top self-time table) to this path after the run. Scope *counts*
    /// in the artifact are deterministic per seed; durations are
    /// wall-clock and never leak into `--metrics-json` or the digest.
    pub profile: Option<String>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            loss: 0.0,
            dup: 0.0,
            delay_ms: 0,
            jitter_ms: 0,
            duration_ms: 120_000,
            seed: 0,
            sweep: false,
            metrics: false,
            metrics_json: false,
            metrics_prom: false,
            slo: None,
            postmortem: None,
            inject_breach: false,
            engine: EngineKind::default(),
            scenario: None,
            duration_explicit: false,
            profile: None,
        }
    }
}

impl SimOptions {
    fn validate(&self) -> Result<(), String> {
        for (flag, p) in [("--loss", self.loss), ("--dup", self.dup)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{flag} must lie in [0, 1], got {p}"));
            }
        }
        if self.duration_ms == 0 {
            return Err("--duration must be positive".into());
        }
        Ok(())
    }

    /// The fault ladder this invocation runs: the canned sweep or the
    /// single profile assembled from the flags.
    fn fault_ladder(&self) -> Vec<FaultConfig> {
        if self.sweep {
            [0.0, 0.05, 0.1, 0.2, 0.4]
                .iter()
                .map(|&loss| {
                    FaultConfig::symmetric(FaultProfile {
                        drop: loss,
                        duplicate: loss / 2.0,
                        delay_ms: 20,
                        jitter_ms: 100,
                    })
                })
                .collect()
        } else {
            vec![FaultConfig::symmetric(FaultProfile {
                drop: self.loss,
                duplicate: self.dup,
                delay_ms: self.delay_ms,
                jitter_ms: self.jitter_ms,
            })]
        }
    }
}

/// What one `dustctl sim` invocation produced: the rendered report plus
/// whether any SLO rule fired (so `main` can print *and* exit 1 — a
/// breach is a finding, not an error that should eat the output).
#[derive(Debug, Clone)]
pub struct SimRun {
    /// The text to print.
    pub output: String,
    /// True when an `--slo` rule breached in any run.
    pub slo_breached: bool,
}

/// `dustctl sim`: run the Fig. 5 testbed under an imperfect control plane
/// and report what the retry/expiry machinery did about it. Exits nonzero
/// (via `Err`) if a conservation invariant breaks — the whole point of
/// the command is that it never should. With `--slo` the runs are watched
/// by the online SLO engine; breaches land in the report (and the JSON)
/// and flip [`SimRun::slo_breached`].
pub fn cmd_sim(opts: &SimOptions) -> Result<SimRun, String> {
    opts.validate()?;
    if opts.scenario.is_some() {
        return cmd_sim_scenario(opts);
    }
    let spec = match &opts.slo {
        Some(s) => Some(SloSpec::parse(s)?),
        None => None,
    };
    let observed = opts.metrics
        || opts.metrics_json
        || opts.metrics_prom
        || spec.is_some()
        || opts.postmortem.is_some()
        || opts.profile.is_some();
    let mut results: Vec<ChaosResult> = Vec::new();
    let mut recorders: Vec<ObsHandle> = Vec::new();
    let mut engines: Vec<SloEngine> = Vec::new();
    for faults in opts.fault_ladder() {
        let obs = if observed { ObsHandle::recording(opts.seed) } else { ObsHandle::disabled() };
        if opts.profile.is_some() {
            obs.enable_profiling();
        }
        match &spec {
            Some(spec) => {
                let (r, engine) = chaos_with_slo_on(
                    faults,
                    opts.duration_ms,
                    opts.seed,
                    obs.clone(),
                    spec,
                    opts.engine,
                );
                results.push(r);
                engines.push(engine);
            }
            None => results.push(chaos_with_faults_observed_on(
                faults,
                opts.duration_ms,
                opts.seed,
                obs.clone(),
                opts.engine,
            )),
        }
        recorders.push(obs);
    }
    if opts.inject_breach {
        // simulate the unthinkable: an agent vanished (testing the
        // invariant check and the post-mortem machinery end to end)
        results[0].agents_present = results[0].agents_present.saturating_sub(1);
    }
    let mut out = format!(
        "testbed chaos run: {:.0}s simulated, seed {}\n\n{}",
        opts.duration_ms as f64 / 1000.0,
        opts.seed,
        crate::format::render_chaos(&results)
    );
    for (i, r) in results.iter().enumerate() {
        let violated = if r.agents_present != r.agents_expected {
            Some(format!(
                "loss {:.0}%: {} of {} monitor agents lost — conservation broken",
                r.loss * 100.0,
                r.agents_expected - r.agents_present.min(r.agents_expected),
                r.agents_expected
            ))
        } else if !r.ledgers_consistent {
            Some(format!("loss {:.0}%: ledgers diverged", r.loss * 100.0))
        } else if r.unconfirmed_stale > 0 {
            Some(format!(
                "loss {:.0}%: {} unconfirmed offers leaked past the retry budget",
                r.loss * 100.0,
                r.unconfirmed_stale
            ))
        } else {
            None
        };
        if let Some(msg) = violated {
            return Err(write_postmortem(&msg, &recorders[i], opts.postmortem.as_deref()));
        }
    }
    out.push_str("\ninvariants: agents conserved, ledgers consistent, no leaked offers\n");
    let slo_breached = engines.iter().any(|e| e.breached());
    for (r, engine) in results.iter().zip(&engines) {
        out.push_str(&format!("\n-- slo (loss {:.0}%) --\n{}", r.loss * 100.0, engine.report()));
    }
    for (r, obs) in results.iter().zip(&recorders) {
        if opts.metrics {
            let m = obs.metrics().expect("recording handle");
            out.push_str(&format!(
                "\n-- metrics (loss {:.0}%, seed {}, digest {:016x}) --\n{}",
                r.loss * 100.0,
                opts.seed,
                obs.digest().expect("recording handle"),
                m.to_text()
            ));
        }
        if opts.metrics_prom {
            let m = obs.metrics().expect("recording handle");
            out.push_str(&format!(
                "\n-- prometheus (loss {:.0}%, seed {}) --\n{}",
                r.loss * 100.0,
                opts.seed,
                m.to_prometheus()
            ));
        }
    }
    for (i, (r, obs)) in results.iter().zip(&recorders).enumerate() {
        if opts.metrics_json {
            let m = obs.metrics().expect("recording handle");
            let breaches = match engines.get(i) {
                Some(e) => {
                    let lines: Vec<String> =
                        e.breaches().iter().map(|b| format!("\"{}\"", b.to_line())).collect();
                    format!(",\"slo_breaches\":[{}]", lines.join(","))
                }
                None => String::new(),
            };
            out.push_str(&format!(
                "{{\"loss\":{},\"seed\":{},\"digest\":\"{:016x}\"{breaches},\"metrics\":{}}}\n",
                r.loss,
                opts.seed,
                obs.digest().expect("recording handle"),
                m.to_json()
            ));
        }
    }
    if let Some(path) = opts.profile.as_deref() {
        let mut text = String::new();
        for (r, obs) in results.iter().zip(&recorders) {
            text.push_str(&format!("# run: loss {:.0}%\n", r.loss * 100.0));
            text.push_str(&obs.profile_report().expect("profiling was enabled"));
        }
        std::fs::write(path, &text).map_err(|e| format!("profile write to {path} failed: {e}"))?;
        out.push_str(&format!("\nprofile written to {path}\n"));
    }
    Ok(SimRun { output: out, slo_breached })
}

/// `dustctl sim --scenario <name>`: run one registry scenario with its
/// attached SLO spec evaluated by default (`--slo` overrides it). The
/// run always records — the digest lands in the JSON line and two runs
/// at the same seed are byte-identical, which is what the CI chaos gate
/// diffs. A breach flips [`SimRun::slo_breached`] (exit 1) and, with
/// `--postmortem`, dumps the flight recorder; unlike an invariant
/// violation it is a finding, so the report is still printed.
fn cmd_sim_scenario(opts: &SimOptions) -> Result<SimRun, String> {
    let name = opts.scenario.as_deref().expect("caller checked");
    if name == "help" || name == "list" {
        let mut out = String::from("named scenarios (dustctl sim --scenario <name>):\n\n");
        for sc in registry::all() {
            out.push_str(&format!(
                "  {:<12} {}\n               default {} s, slo {}\n",
                sc.name,
                sc.summary,
                sc.default_duration_ms / 1000,
                sc.slo_spec,
            ));
        }
        return Ok(SimRun { output: out, slo_breached: false });
    }
    let Some(sc) = registry::find(name) else {
        let names: Vec<&str> = registry::all().iter().map(|s| s.name).collect();
        return Err(format!(
            "unknown scenario {name:?} (have: {}; --scenario help describes them)",
            names.join(", ")
        ));
    };
    if opts.loss != 0.0 || opts.dup != 0.0 || opts.delay_ms != 0 || opts.jitter_ms != 0 {
        return Err(format!(
            "scenario {} carries its own fault model: drop --loss/--dup/--delay/--jitter",
            sc.name
        ));
    }
    if opts.sweep || opts.inject_breach {
        return Err("--sweep/--inject-breach apply to the chaos ladder, not --scenario runs".into());
    }
    let slo_override = match &opts.slo {
        Some(s) => Some(SloSpec::parse(s)?),
        None => None,
    };
    let obs = ObsHandle::recording(opts.seed);
    if opts.profile.is_some() {
        obs.enable_profiling();
    }
    let knobs = ScenarioKnobs {
        duration_ms: opts.duration_explicit.then_some(opts.duration_ms),
        seed: opts.seed,
        engine: opts.engine,
        obs: obs.clone(),
        slo_override,
    };
    let duration = sc.duration(&knobs);
    let run = sc.run(&knobs).map_err(|e| e.to_string())?;
    let r = &run.report;
    let mut out = format!(
        "scenario {}: {}\n{:.0}s simulated, seed {}, slo {}\n\n",
        sc.name,
        sc.summary,
        duration as f64 / 1000.0,
        opts.seed,
        opts.slo.as_deref().unwrap_or(sc.slo_spec),
    );
    out.push_str(&format!(
        "transfers {} | replicas {} | msgs {} (dropped {}, duplicated {}) | \
         retries {} | abandoned {}\n",
        r.transfers_applied,
        r.replicas_applied,
        r.msgs_sent,
        r.msgs_dropped,
        r.msgs_duplicated,
        r.offer_retries,
        r.offers_abandoned,
    ));
    out.push_str(&match r.first_transfer_ms {
        Some(t) => format!("first transfer at {t} ms\n"),
        None => "no transfer landed\n".to_string(),
    });
    out.push_str(&format!("\n-- slo --\n{}", run.slo.report()));
    if run.breached() {
        if let Some(path) = opts.postmortem.as_deref() {
            let msg = format!("scenario {} breached its SLO", sc.name);
            if let Some(dump) = obs.post_mortem(&msg) {
                match std::fs::write(path, &dump) {
                    Ok(()) => out.push_str(&format!("\npostmortem written to {path}\n")),
                    Err(e) => out.push_str(&format!("\npostmortem write to {path} failed: {e}\n")),
                }
            }
        }
    }
    let m = obs.metrics().expect("recording handle");
    let digest = obs.digest().expect("recording handle");
    if opts.metrics {
        out.push_str(&format!(
            "\n-- metrics (scenario {}, seed {}, digest {digest:016x}) --\n{}",
            sc.name,
            opts.seed,
            m.to_text()
        ));
    }
    if opts.metrics_prom {
        out.push_str(&format!(
            "\n-- prometheus (scenario {}, seed {}) --\n{}",
            sc.name,
            opts.seed,
            m.to_prometheus()
        ));
    }
    if opts.metrics_json {
        let lines: Vec<String> =
            run.slo.breaches().iter().map(|b| format!("\"{}\"", b.to_line())).collect();
        out.push_str(&format!(
            "{{\"scenario\":\"{}\",\"seed\":{},\"digest\":\"{digest:016x}\",\
             \"slo_breaches\":[{}],\"metrics\":{}}}\n",
            sc.name,
            opts.seed,
            lines.join(","),
            m.to_json()
        ));
    }
    if let Some(path) = opts.profile.as_deref() {
        let text = format!(
            "# run: scenario {}\n{}",
            sc.name,
            obs.profile_report().expect("profiling was enabled")
        );
        std::fs::write(path, &text).map_err(|e| format!("profile write to {path} failed: {e}"))?;
        out.push_str(&format!("\nprofile written to {path}\n"));
    }
    Ok(SimRun { output: out, slo_breached: run.breached() })
}

/// On an invariant violation, dump the flight recorder to `path` (when
/// requested and recording) and fold the outcome into the error message.
fn write_postmortem(msg: &str, obs: &ObsHandle, path: Option<&str>) -> String {
    let Some(path) = path else { return msg.to_string() };
    let Some(dump) = obs.post_mortem(msg) else { return msg.to_string() };
    match std::fs::write(path, &dump) {
        Ok(()) => format!("{msg} (postmortem written to {path})"),
        Err(e) => format!("{msg} (postmortem write to {path} failed: {e})"),
    }
}

/// `dustctl trace`: run one chaos scenario with the trace recorder on
/// and print the event census plus the run's digest — or, with `full`,
/// the entire decoded event log. Two invocations with the same flags
/// print byte-identical output; that is the feature.
///
/// The full dump *streams* into `out` one event at a time (traces grow
/// with duration; a two-minute chaos run is tens of thousands of lines),
/// so no run-length buffer is ever materialized.
pub fn cmd_trace(
    opts: &SimOptions,
    full: bool,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    opts.validate()?;
    if opts.sweep {
        return Err("trace records a single run; drop --sweep".into());
    }
    let obs = ObsHandle::recording(opts.seed);
    let faults = opts.fault_ladder().remove(0);
    let r = chaos_with_faults_observed_on(
        faults,
        opts.duration_ms,
        opts.seed,
        obs.clone(),
        opts.engine,
    );
    let trace = obs.trace_snapshot().expect("recording handle");
    if full {
        return trace.write_text(out).map_err(|e| format!("writing trace: {e}"));
    }
    let mut by_kind: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for e in trace.entries() {
        *by_kind.entry(e.event.kind()).or_insert(0) += 1;
    }
    let mut text = format!(
        "trace: seed {}, loss {:.0}%, {} events, digest {:016x}\n",
        opts.seed,
        r.loss * 100.0,
        trace.len(),
        trace.digest()
    );
    for (kind, n) in by_kind {
        text.push_str(&format!("  {kind:<18} {n}\n"));
    }
    out.write_all(text.as_bytes()).map_err(|e| format!("writing census: {e}"))
}

/// `dustctl spans`: run one chaos scenario, reconstruct every flow's
/// causal span tree, and print a per-flow table, per-phase p50/p99
/// latencies, and the critical-path breakdown. `flow` narrows the table
/// to one transfer's request id; `phase` narrows the latency table to
/// one phase name. Byte-identical per seed, like everything else here.
pub fn cmd_spans(
    opts: &SimOptions,
    flow: Option<u64>,
    phase: Option<&str>,
) -> Result<String, String> {
    opts.validate()?;
    if opts.sweep {
        return Err("spans analyzes a single run; drop --sweep".into());
    }
    let obs = ObsHandle::recording(opts.seed);
    let faults = opts.fault_ladder().remove(0);
    let r = chaos_with_faults_observed_on(
        faults,
        opts.duration_ms,
        opts.seed,
        obs.clone(),
        opts.engine,
    );
    let trace = obs.trace_snapshot().expect("recording handle");
    let forest = build_spans(&trace);
    let (t, reg, p) = forest.kind_counts();
    let mut out = format!(
        "spans: seed {}, loss {:.0}%, {} events → {} flows \
         ({t} transfers, {reg} registrations, {p} rounds), \
         unflowed {}, orphan events {}\n\n",
        opts.seed,
        r.loss * 100.0,
        forest.total_events,
        forest.flows.len(),
        forest.unflowed_events,
        forest.orphan_events,
    );

    out.push_str("flow    outcome      start_ms  dur_ms  events  backoffs  phases\n");
    for f in &forest.flows {
        if let Some(want) = flow {
            if f.flow != FlowId::Transfer(want) {
                continue;
            }
        }
        let phases: Vec<String> =
            f.phases.iter().map(|s| format!("{}={}ms", s.name, s.dur_ms())).collect();
        out.push_str(&format!(
            "{:<7} {:<12} {:>8}  {:>6}  {:>6}  {:>8}  {}{}\n",
            f.flow.to_string(),
            f.outcome.name(),
            f.root.start_ms,
            f.root.dur_ms(),
            f.events,
            f.backoffs.len(),
            phases.join(" "),
            if f.complete { "" } else { "  [INCOMPLETE]" },
        ));
    }

    let hists = forest.phase_histograms();
    out.push_str("\nphase latency (ms):\nphase         count    p50    p99\n");
    for (name, h) in &hists {
        if let Some(want) = phase {
            if *name != want {
                continue;
            }
        }
        let q = |q: f64| h.quantile(q).map_or("-".into(), |v| format!("{v:.1}"));
        out.push_str(&format!("{name:<12} {:>6}  {:>5}  {:>5}\n", h.count(), q(0.5), q(0.99)));
    }

    let cp = forest.critical_path();
    let total: u64 = cp.iter().map(|(_, ms, _)| ms).sum();
    out.push_str("\ncritical path (share of total phase time):\n");
    for (name, ms, n) in &cp {
        let share = if total > 0 { 100.0 * *ms as f64 / total as f64 } else { 0.0 };
        out.push_str(&format!("  {name:<12} {ms:>7} ms over {n:>3} span(s)  {share:5.1}%\n"));
    }
    Ok(out)
}

fn route_string(a: &Assignment) -> String {
    match &a.route {
        Some(r) => r.nodes.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join("→"),
        None => "?".into(),
    }
}

/// `dustctl roles`: classify every node.
pub fn roles(nmdb: &Nmdb, opts: &Options) -> Result<String, String> {
    let cfg = opts.config()?;
    let mut out = format!(
        "thresholds: C_max {} / CO_max {} / x_min {} (delta_io {:.2})\n",
        cfg.c_max,
        cfg.co_max,
        cfg.x_min,
        cfg.delta_io()
    );
    for n in nmdb.graph.nodes() {
        let s = nmdb.state(n);
        let role = nmdb.role(n, &cfg);
        let extra = match role {
            Role::Busy => format!("  Cs = {:.1}", nmdb.cs(n, &cfg)),
            Role::OffloadCandidate => format!("  Cd = {:.1}", nmdb.cd(n, &cfg)),
            _ => String::new(),
        };
        out.push_str(&format!(
            "node {:>4}  util {:6.1}%  D {:8.1} Mb  {:?}{}\n",
            n.0, s.utilization, s.data_mb, role, extra
        ));
    }
    out.push_str(&format!(
        "totals: Cs = {:.1}, Cd = {:.1}{}\n",
        nmdb.total_cs(&cfg),
        nmdb.total_cd(&cfg),
        if nmdb.total_cs(&cfg) > nmdb.total_cd(&cfg) { "  (capacity precheck FAILS)" } else { "" }
    ));
    Ok(out)
}

/// `dustctl optimize`: the exact placement, with routes.
///
/// Infeasible placements surface as `Err` (typed by [`DustError`]'s
/// message) so the process exits nonzero, letting scripts branch on the
/// outcome.
pub fn cmd_optimize(nmdb: &Nmdb, opts: &Options) -> Result<String, String> {
    let cfg = opts.config()?;
    let report = opts.request(nmdb, &cfg).solve().map_err(|e| match e {
        DustError::Infeasible => {
            format!("{e}; raise CO_max / max-hop, or add capacity")
        }
        DustError::NoPathWithinHops => format!("{e}; raise --max-hop"),
        other => other.to_string(),
    })?;
    let p = report.as_lp().expect("default strategy is the exact LP");
    let mut out = format!("status: {:?}\n", p.status);
    match p.status {
        PlacementStatus::Optimal => {
            out.push_str(&format!(
                "beta = {:.6} s·%, total offloaded = {:.1}%, mean hops = {}\n",
                p.beta,
                p.total_offloaded(),
                p.mean_hops().map_or("n/a".into(), |h| format!("{h:.2}")),
            ));
            for a in &p.assignments {
                out.push_str(&format!(
                    "  move {:6.2}% from {} to {}  (T_rmin {:.6}s, route {})\n",
                    a.amount,
                    a.from.0,
                    a.to.0,
                    a.t_rmin,
                    route_string(a)
                ));
            }
            // capacity worth buying: most negative shadow prices first
            let mut prices = p.shadow_prices.clone();
            prices.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let binding: Vec<String> = prices
                .iter()
                .take_while(|(_, v)| *v < -1e-12)
                .take(3)
                .map(|(n, v)| format!("node {} ({:+.5})", n.0, v))
                .collect();
            if !binding.is_empty() {
                out.push_str(&format!(
                    "  capacity worth upgrading (shadow prices): {}\n",
                    binding.join(", ")
                ));
            }
        }
        PlacementStatus::Infeasible => {
            out.push_str("no feasible placement: raise CO_max / max-hop, or add capacity\n");
        }
        PlacementStatus::NoBusyNodes => {
            out.push_str("no node exceeds C_max; nothing to offload\n");
        }
    }
    Ok(out)
}

/// `dustctl heuristic`: Algorithm 1 (optionally with extended reach).
pub fn cmd_heuristic(nmdb: &Nmdb, opts: &Options, hops: usize) -> Result<String, String> {
    let cfg = opts.config()?;
    if hops == 0 {
        return Err("--hops must be at least 1".into());
    }
    let report =
        opts.request(nmdb, &cfg).heuristic_hops(hops).solve().map_err(|e| e.to_string())?;
    let h = report.as_heuristic().expect("heuristic strategy was configured");
    let mut out = format!(
        "placed {:.1} of {:.1} capacity-% within {} hop(s); HFR = {:.2}%\n",
        h.total_cs - h.total_cse,
        h.total_cs,
        hops,
        h.hfr_percent()
    );
    for a in &h.assignments {
        out.push_str(&format!(
            "  move {:6.2}% from {} to {}  (Tr {:.6}s, route {})\n",
            a.amount,
            a.from.0,
            a.to.0,
            a.t_rmin,
            route_string(a)
        ));
    }
    for (n, r) in &h.residual {
        out.push_str(&format!("  UNPLACED {:.2}% on node {}\n", r, n.0));
    }
    Ok(out)
}

/// `dustctl zoned`: per-zone placement with optional cross-zone sweep.
pub fn cmd_zoned(
    nmdb: &Nmdb,
    opts: &Options,
    zone_size: usize,
    sweep: bool,
) -> Result<String, String> {
    let cfg = opts.config()?;
    if zone_size == 0 {
        return Err("--zone-size must be at least 1".into());
    }
    let zoning = zone_by_bfs(&nmdb.graph, zone_size);
    let report =
        opts.request(nmdb, &cfg).zoned(&zoning, sweep).solve().map_err(|e| e.to_string())?;
    let z = report.as_zoned().expect("zoned strategy was configured");
    let total_cs = nmdb.total_cs(&cfg);
    let mut out = format!(
        "{} zones (max size {}), {} active; beta = {:.6}; unplaced = {:.1}% of Cs\n\
         latency bound (slowest zone) = {:.2?}, sequential total = {:.2?}\n",
        zoning.zone_count(),
        zoning.max_zone_size(),
        z.active_zones,
        z.beta,
        z.residual_rate_percent(total_cs),
        z.max_zone_time,
        z.total_time,
    );
    for a in &z.assignments {
        out.push_str(&format!(
            "  move {:6.2}% from {} to {}  (zone {} → {})\n",
            a.amount,
            a.from.0,
            a.to.0,
            zoning.zone_of[a.from.index()],
            zoning.zone_of[a.to.index()],
        ));
    }
    for (n, r) in &z.final_residual {
        out.push_str(&format!("  UNPLACED {:.2}% on node {}\n", r, n.0));
    }
    Ok(out)
}

/// `dustctl dot`: render the network (roles colored, busy nodes red,
/// candidates green) and the optimizer's chosen routes as Graphviz.
pub fn cmd_dot(nmdb: &Nmdb, opts: &Options) -> Result<String, String> {
    use dust::topology::{placement_to_dot, NodeStyle};
    let cfg = opts.config()?;
    let styles: Vec<NodeStyle> = nmdb
        .graph
        .nodes()
        .map(|n| {
            let s = nmdb.state(n);
            let fill = match nmdb.role(n, &cfg) {
                Role::Busy => Some("tomato".to_string()),
                Role::OffloadCandidate => Some("palegreen".to_string()),
                Role::Neutral => Some("lightyellow".to_string()),
                Role::NonOffloading => Some("lightgray".to_string()),
            };
            NodeStyle { label: Some(format!("{:.0}%", s.utilization)), fill }
        })
        .collect();
    // run_lp keeps the infeasible outcome as data: the graph still renders,
    // just without a route overlay.
    let p = opts.request(nmdb, &cfg).run_lp().map_err(|e| e.to_string())?;
    let routes: Vec<_> = p.assignments.iter().filter_map(|a| a.route.clone()).collect();
    Ok(placement_to_dot(&nmdb.graph, "dust", &styles, &routes))
}

/// Options for `dustctl place`: single or batched placement rounds,
/// optionally over a generated fat-tree and the partitioned solve path.
#[derive(Debug, Clone)]
pub struct PlaceOptions {
    /// Shared threshold/routing options.
    pub base: Options,
    /// Generate a k-port fat-tree instead of reading a network-state file.
    pub fat_tree: Option<usize>,
    /// POP-style partition count (`None` or 1 = the exact whole-problem solve).
    pub partitions: Option<usize>,
    /// Placement rounds to run back-to-back (throughput mode when > 1).
    pub batch: usize,
    /// Seed for generated states (round `i` uses `seed + i`).
    pub seed: u64,
    /// Also solve each round exactly and report the objective gap.
    pub gap: bool,
    /// Write the solver-side wall-clock profile (simplex, partition
    /// deal/solve/repair, cost-matrix pricing) to this path.
    pub profile: Option<String>,
    /// Steady-state mode: freeze the node states at round 0, drift link
    /// utilizations between rounds, and warm-start each solve from the
    /// previous round's simplex bases (transportation backend only).
    pub warm: bool,
    /// With `warm`: hold the previous placement — skipping the solve
    /// entirely — when no assignment's re-priced `T_rmin` degraded by
    /// more than this fraction.
    pub delta_threshold: Option<f64>,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            base: Options::default(),
            fat_tree: None,
            partitions: None,
            batch: 1,
            seed: 0,
            gap: false,
            profile: None,
            warm: false,
            delta_threshold: None,
        }
    }
}

/// Seeded link drift for `--warm` steady-state rounds: retune an eighth
/// of the links' utilizations, leaving node states (and so the
/// busy/candidate sets) fixed so the previous round's bases stay
/// offerable. Mutating through `link_mut` journals the touched links,
/// which lets the shared cost engine re-price only the crossing rows.
fn drift_links(g: &mut Graph, seed: u64, round: u64) {
    use dust::topology::EdgeId;
    let mut rng = SplitMix64::new(seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let edges = g.edge_count() as u64;
    for _ in 0..(edges / 8 + 1) {
        let e = EdgeId(rng.below(edges) as u32);
        g.link_mut(e).utilization = rng.range_f64(0.05, 0.95);
    }
}

/// `dustctl place`: run placement rounds — from a file or a generated
/// fat-tree — through the exact or partitioned solve path, reporting
/// solve throughput (rounds/sec) and, with `--gap`, the objective gap
/// versus the exact solution. With `--warm` the batch becomes one
/// steady-state instance whose links drift between rounds: node states
/// freeze at round 0 (keeping the busy/candidate sets fixed), a shared
/// cost engine re-prices only rows crossing drifted links, and each
/// solve warm-starts from the previous round's bases.
pub fn cmd_place(file_nmdb: Option<&Nmdb>, opts: &PlaceOptions) -> Result<String, String> {
    use std::num::NonZeroUsize;
    let cfg = opts.base.config()?;
    if opts.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if opts.warm && opts.base.simplex {
        return Err("--warm needs the transportation backend (drop --simplex)".into());
    }
    if let Some(t) = opts.delta_threshold {
        if !opts.warm {
            return Err("--delta-threshold requires --warm".into());
        }
        if !t.is_finite() || t < 0.0 {
            return Err("--delta-threshold must be finite and non-negative".into());
        }
    }
    let parts = opts.partitions.unwrap_or(1);
    let parts_nz = NonZeroUsize::new(parts).ok_or("--partitions must be at least 1")?;
    let generated_graph = match (file_nmdb, opts.fat_tree) {
        (None, Some(k)) => Some(FatTree::with_default_links(k).graph),
        (None, None) => return Err("place needs a <file> or --fat-tree K".into()),
        (Some(_), Some(_)) => return Err("give either a <file> or --fat-tree, not both".into()),
        (Some(_), None) => None,
    };

    // --warm reads the lp.* warm counters back, so it records even
    // without --profile (profiling itself stays opt-in).
    let obs = if opts.profile.is_some() || opts.warm {
        let o = ObsHandle::recording(opts.seed);
        if opts.profile.is_some() {
            o.enable_profiling();
        }
        o
    } else {
        ObsHandle::disabled()
    };
    let exact_round = |nmdb: &Nmdb| -> Result<Placement, String> {
        opts.base.request(nmdb, &cfg).obs(obs.clone()).run_lp().map_err(|e| e.to_string())
    };

    let params = ScenarioParams::default();
    let make_nmdb = |round: u64| -> Option<Nmdb> {
        generated_graph
            .as_ref()
            .map(|g| random_nmdb(g, &cfg, &params, opts.seed.wrapping_add(round)))
    };

    // The steady-state instance `--warm` drifts in place; rounds without
    // `--warm` re-generate states per round instead.
    let mut steady: Option<Nmdb> = if opts.warm {
        Some(match file_nmdb {
            Some(db) => db.clone(),
            None => make_nmdb(0).expect("generated path has a graph"),
        })
    } else {
        None
    };
    let engine = CostEngine::with_threads(opts.base.threads).with_obs(obs.clone());

    let mut out = String::new();
    let mut optimal = 0usize;
    let mut no_busy = 0usize;
    let mut infeasible = 0usize;
    let mut fallbacks = 0usize;
    let mut warm_rounds = 0usize;
    let mut held_rounds = 0usize;
    let mut beta_sum = 0.0f64;
    let mut gap_sum = 0.0f64;
    let mut gap_max = 0.0f64;
    let mut gap_rounds = 0usize;

    let started = std::time::Instant::now();
    let mut last: Option<Placement> = None;
    for round in 0..opts.batch as u64 {
        let storage;
        let nmdb: &Nmdb = match (&mut steady, file_nmdb) {
            (Some(db), _) => {
                if round > 0 {
                    drift_links(&mut db.graph, opts.seed, round);
                    engine.refresh(&mut db.graph, 0.25);
                }
                db
            }
            (None, Some(db)) => db,
            (None, None) => {
                storage = make_nmdb(round).expect("generated path has a graph");
                &storage
            }
        };
        // delta hold: when every assignment's re-priced T_rmin is still
        // within the threshold of what the last solve paid, the previous
        // placement stands and the round costs only the row reads
        if let (Some(t), Some(prev)) = (opts.delta_threshold, &last) {
            let intact = prev.status == PlacementStatus::Optimal
                && !prev.assignments.is_empty()
                && prev.assignments.iter().all(|a| {
                    let row = engine.row(&nmdb.graph, a.from, cfg.max_hop, cfg.path_engine);
                    let fresh = row[a.to.index()];
                    fresh.is_finite() && fresh <= a.t_rmin * (1.0 + t)
                });
            if intact {
                held_rounds += 1;
                continue;
            }
        }
        let p = {
            let mut req = opts
                .base
                .request(nmdb, &cfg)
                .partitions(if parts > 1 { Some(parts_nz) } else { None })
                .partition_seed(if opts.warm { opts.seed } else { opts.seed ^ round })
                .obs(obs.clone());
            if opts.warm {
                req = req.engine(&engine);
            }
            if let Some(w) =
                last.as_ref().filter(|_| opts.warm).map(|pl| &pl.warm).filter(|w| !w.is_empty())
            {
                req = req.warm_start(w);
            }
            req.run_lp().map_err(|e| e.to_string())?
        };
        if p.warm_used {
            warm_rounds += 1;
        }
        match p.status {
            PlacementStatus::Optimal => {
                optimal += 1;
                beta_sum += p.beta;
                if p.partition_fallback {
                    fallbacks += 1;
                }
                if opts.gap {
                    let exact = exact_round(nmdb)?;
                    if exact.status == PlacementStatus::Optimal && exact.beta > 1e-12 {
                        let gap = ((p.beta - exact.beta) / exact.beta * 100.0).max(0.0);
                        gap_sum += gap;
                        gap_max = gap_max.max(gap);
                        gap_rounds += 1;
                    }
                }
            }
            PlacementStatus::NoBusyNodes => no_busy += 1,
            PlacementStatus::Infeasible => infeasible += 1,
        }
        last = Some(p);
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    let p = last.expect("batch >= 1 always solves at least once");
    let nodes = file_nmdb
        .map(|db| db.graph.node_count())
        .or_else(|| generated_graph.as_ref().map(|g| g.node_count()))
        .unwrap_or(0);
    out.push_str(&format!(
        "place: {} round(s) on {} nodes, partitions = {}, threads = {}\n",
        opts.batch,
        nodes,
        parts,
        if opts.base.threads == 0 { "auto".to_string() } else { opts.base.threads.to_string() },
    ));
    if opts.batch == 1 {
        out.push_str(&format!("status: {:?}\n", p.status));
        if p.status == PlacementStatus::Optimal {
            out.push_str(&format!(
                "beta = {:.6} s·%, total offloaded = {:.1}%, assignments = {}{}\n",
                p.beta,
                p.total_offloaded(),
                p.assignments.len(),
                if p.partition_fallback { ", exact fallback" } else { "" },
            ));
        }
    } else {
        out.push_str(&format!(
            "outcomes: optimal = {optimal}, no-busy = {no_busy}, infeasible = {infeasible}, \
             partition fallbacks = {fallbacks}\n"
        ));
        if optimal > 0 {
            out.push_str(&format!("mean beta = {:.6} s·%\n", beta_sum / optimal as f64));
        }
    }
    out.push_str(&format!(
        "throughput: {:.1} rounds/sec ({:.3} s total)\n",
        opts.batch as f64 / elapsed,
        elapsed,
    ));
    if opts.warm {
        out.push_str(&format!(
            "warm starts: {} of {} solved round(s) reused bases; pivots warm = {}, \
             cold = {}, saved = {}\n",
            warm_rounds,
            opts.batch - held_rounds,
            obs.counter("lp.warm_pivots"),
            obs.counter("lp.cold_pivots"),
            obs.counter("lp.pivots_saved"),
        ));
        out.push_str(&format!(
            "cost refresh: {} incremental, {} full invalidation(s), rows migrated = {}, \
             invalidated = {}\n",
            obs.counter("cost.refreshes").saturating_sub(obs.counter("cost.full_invalidations")),
            obs.counter("cost.full_invalidations"),
            obs.counter("cost.rows_migrated"),
            obs.counter("cost.rows_invalidated"),
        ));
    }
    if let Some(t) = opts.delta_threshold {
        out.push_str(&format!(
            "delta hold (threshold {:.2}): held = {} round(s), solved = {}\n",
            t,
            held_rounds,
            opts.batch - held_rounds,
        ));
    }
    if opts.gap {
        if gap_rounds > 0 {
            out.push_str(&format!(
                "objective gap vs exact: mean = {:.3}%, max = {:.3}% over {gap_rounds} round(s)\n",
                gap_sum / gap_rounds as f64,
                gap_max,
            ));
        } else {
            out.push_str("objective gap vs exact: n/a (no optimal rounds)\n");
        }
    }
    if let Some(path) = opts.profile.as_deref() {
        let report = obs.profile_report().expect("profiling was enabled");
        std::fs::write(path, &report)
            .map_err(|e| format!("profile write to {path} failed: {e}"))?;
        out.push_str(&format!("profile written to {path}\n"));
    }
    Ok(out)
}

/// Options for `dustctl profile <scenario>`: one profiled run of a named
/// registry scenario (or the `scale_fleet` benchmark fleet) with the
/// wall-clock profiler on from the start.
#[derive(Debug, Clone, Default)]
pub struct ProfileOptions {
    /// Master seed.
    pub seed: u64,
    /// Simulated-duration override, ms (`None` = the scenario default).
    pub duration_ms: Option<u64>,
    /// Which simulation core to profile.
    pub engine: EngineKind,
    /// Write the artifact to this path instead of stdout.
    pub out: Option<String>,
}

/// The fat-tree arity `dustctl profile scale_fleet` uses: big enough
/// that the per-event machinery dominates, small enough for an
/// interactive command (the committed benchmark uses k = 90).
const PROFILE_FLEET_K: usize = 24;

/// Default simulated duration for `dustctl profile scale_fleet`, ms.
const PROFILE_FLEET_DURATION_MS: u64 = 10_000;

/// `dustctl profile <scenario>`: run one named scenario with the
/// hierarchical profiler enabled and emit the folded-stack artifact —
/// scope-count lines first (deterministic per seed; CI byte-diffs them),
/// then wall-clock `self` lines a flamegraph renders, then the top
/// self-time table. `scale_fleet` profiles the benchmark fleet (which is
/// deliberately not in the registry: it has no SLO, it exists to be
/// measured); every other name resolves through [`registry::find`].
pub fn cmd_profile(name: &str, opts: &ProfileOptions) -> Result<String, String> {
    if name == "help" || name == "list" {
        let mut out = String::from("profilable scenarios (dustctl profile <name>):\n\n");
        for sc in registry::all() {
            out.push_str(&format!("  {:<12} {}\n", sc.name, sc.summary));
        }
        out.push_str(&format!(
            "  {:<12} the {}-port benchmark fleet, {} s default\n",
            "scale_fleet",
            PROFILE_FLEET_K,
            PROFILE_FLEET_DURATION_MS / 1000
        ));
        return Ok(out);
    }
    let obs = ObsHandle::recording(opts.seed);
    obs.enable_profiling();
    let (label, duration_ms, events) = if name == "scale_fleet" {
        let duration = opts.duration_ms.unwrap_or(PROFILE_FLEET_DURATION_MS);
        let mut sim =
            scale_fleet_sim_on(PROFILE_FLEET_K, duration, opts.seed, obs.clone(), opts.engine);
        let report = sim.run();
        (format!("scale_fleet (k={PROFILE_FLEET_K})"), duration, report.events_processed)
    } else {
        let Some(sc) = registry::find(name) else {
            let names: Vec<&str> = registry::all().iter().map(|s| s.name).collect();
            return Err(format!(
                "unknown scenario {name:?} (have: {}, scale_fleet; profile help lists them)",
                names.join(", ")
            ));
        };
        let knobs = ScenarioKnobs {
            duration_ms: opts.duration_ms,
            seed: opts.seed,
            engine: opts.engine,
            obs: obs.clone(),
            slo_override: None,
        };
        let duration = sc.duration(&knobs);
        let run = sc.run(&knobs).map_err(|e| e.to_string())?;
        (sc.name.to_string(), duration, run.report.events_processed)
    };
    let mut out = format!(
        "profile: {label}, seed {}, engine {}, {:.0}s simulated, {events} events\n",
        opts.seed,
        opts.engine,
        duration_ms as f64 / 1000.0,
    );
    let report = obs.profile_report().expect("profiling was enabled");
    match opts.out.as_deref() {
        Some(path) => {
            std::fs::write(path, &report)
                .map_err(|e| format!("profile write to {path} failed: {e}"))?;
            out.push_str(&format!("profile written to {path}\n"));
        }
        None => out.push_str(&report),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{example_file, parse_nmdb};

    fn fig4() -> Nmdb {
        parse_nmdb(&example_file()).unwrap()
    }

    #[test]
    fn roles_lists_everything() {
        let out = roles(&fig4(), &Options::default()).unwrap();
        assert!(out.contains("Busy"));
        assert!(out.contains("OffloadCandidate"));
        assert!(out.contains("Cs = 12.0"));
        assert!(out.contains("totals:"));
    }

    #[test]
    fn place_single_round_on_a_file() {
        let db = fig4();
        let out = cmd_place(Some(&db), &PlaceOptions::default()).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("rounds/sec"), "{out}");
    }

    #[test]
    fn place_batch_on_a_generated_fat_tree_with_partitions_and_gap() {
        let opts = PlaceOptions {
            fat_tree: Some(4),
            partitions: Some(2),
            batch: 3,
            seed: 7,
            gap: true,
            ..Default::default()
        };
        let out = cmd_place(None, &opts).unwrap();
        assert!(out.contains("3 round(s) on 20 nodes, partitions = 2"), "{out}");
        assert!(out.contains("outcomes:"), "{out}");
        assert!(out.contains("objective gap vs exact"), "{out}");
    }

    #[test]
    fn place_rejects_contradictory_sources() {
        let db = fig4();
        let opts = PlaceOptions { fat_tree: Some(4), ..Default::default() };
        assert!(cmd_place(Some(&db), &opts).is_err());
        assert!(cmd_place(None, &PlaceOptions::default()).is_err());
        let opts = PlaceOptions { fat_tree: Some(4), batch: 0, ..Default::default() };
        assert!(cmd_place(None, &opts).is_err());
    }

    #[test]
    fn place_warm_steady_state_reuses_bases() {
        let opts =
            PlaceOptions { fat_tree: Some(8), batch: 6, seed: 3, warm: true, ..Default::default() };
        let out = cmd_place(None, &opts).unwrap();
        assert!(out.contains("warm starts:"), "{out}");
        // node states freeze at round 0, so every later round's bases match
        assert!(out.contains("warm starts: 5 of 6"), "{out}");
        assert!(out.contains("cost refresh:"), "{out}");
    }

    #[test]
    fn place_delta_threshold_holds_undegraded_rounds() {
        // a huge threshold means no drift ever degrades an assignment
        // past it: round 0 solves, every later round is held
        let db = fig4();
        let opts =
            PlaceOptions { batch: 4, warm: true, delta_threshold: Some(1e6), ..Default::default() };
        let out = cmd_place(Some(&db), &opts).unwrap();
        assert!(out.contains("held = 3 round(s), solved = 1"), "{out}");
    }

    #[test]
    fn place_warm_rejects_bad_flag_combinations() {
        let base = Options { simplex: true, ..Options::default() };
        let opts = PlaceOptions { fat_tree: Some(4), warm: true, base, ..Default::default() };
        assert!(cmd_place(None, &opts).is_err());
        let opts =
            PlaceOptions { fat_tree: Some(4), delta_threshold: Some(0.1), ..Default::default() };
        assert!(cmd_place(None, &opts).is_err(), "--delta-threshold needs --warm");
        let opts = PlaceOptions {
            fat_tree: Some(4),
            warm: true,
            delta_threshold: Some(-0.5),
            ..Default::default()
        };
        assert!(cmd_place(None, &opts).is_err(), "negative threshold rejected");
    }

    #[test]
    fn optimize_prints_route() {
        let out = cmd_optimize(&fig4(), &Options::default()).unwrap();
        assert!(out.contains("status: Optimal"), "{out}");
        assert!(out.contains("move  12.00% from 0"), "{out}");
        assert!(out.contains("route 0→2→"), "{out}");
    }

    #[test]
    fn heuristic_reports_failure_on_fig4() {
        // S1's only neighbor is the relay S3 (65 %) — one hop finds nothing
        let out = cmd_heuristic(&fig4(), &Options::default(), 1).unwrap();
        assert!(out.contains("HFR = 100.00%"), "{out}");
        assert!(out.contains("UNPLACED"), "{out}");
        // two hops reach S2/S6
        let out2 = cmd_heuristic(&fig4(), &Options::default(), 2).unwrap();
        assert!(out2.contains("HFR = 0.00%"), "{out2}");
    }

    #[test]
    fn zoned_single_zone_matches_optimize() {
        // S7 has no links, so BFS zoning yields the main zone plus S7 alone
        let out = cmd_zoned(&fig4(), &Options::default(), 100, false).unwrap();
        assert!(out.contains("2 zones"), "{out}");
        assert!(out.contains("unplaced = 0.0%"), "{out}");
    }

    #[test]
    fn zoned_small_zones_need_sweep() {
        // zones of 2: S1's zone likely has no candidate → sweep rescues
        let no_sweep = cmd_zoned(&fig4(), &Options::default(), 2, false).unwrap();
        let sweep = cmd_zoned(&fig4(), &Options::default(), 2, true).unwrap();
        assert!(sweep.contains("unplaced = 0.0%"), "{sweep}");
        let _ = no_sweep;
    }

    #[test]
    fn dot_renders_roles_and_routes() {
        let out = cmd_dot(&fig4(), &Options::default()).unwrap();
        assert!(out.starts_with("graph dust {"), "{out}");
        assert!(out.contains("tomato"), "busy node colored");
        assert!(out.contains("palegreen"), "candidates colored");
        assert!(out.contains("color=red"), "route overlay present");
    }

    #[test]
    fn invalid_options_surface_errors() {
        let o = Options { co_max: 95.0, ..Default::default() }; // co_max above c_max
        assert!(roles(&fig4(), &o).is_err());
        assert!(cmd_heuristic(&fig4(), &Options::default(), 0).is_err());
        assert!(cmd_zoned(&fig4(), &Options::default(), 0, false).is_err());
    }

    #[test]
    fn simplex_and_enumerate_flags_work() {
        let o = Options { simplex: true, enumerate_paths: true, ..Default::default() };
        let out = cmd_optimize(&fig4(), &o).unwrap();
        assert!(out.contains("status: Optimal"));
    }

    #[test]
    fn sim_lossy_run_reports_invariants() {
        let o = SimOptions {
            loss: 0.2,
            dup: 0.1,
            delay_ms: 20,
            jitter_ms: 100,
            duration_ms: 60_000,
            seed: 17,
            ..Default::default()
        };
        let out = cmd_sim(&o).unwrap().output;
        assert!(out.contains("loss%"), "{out}");
        assert!(out.contains("20.0"), "{out}");
        assert!(out.contains("invariants: agents conserved"), "{out}");
    }

    #[test]
    fn sim_sweep_emits_one_row_per_loss_rate() {
        let o = SimOptions { sweep: true, duration_ms: 30_000, seed: 3, ..Default::default() };
        let out = cmd_sim(&o).unwrap().output;
        // header + five ladder rows + trailing invariant line
        assert_eq!(out.lines().filter(|l| l.ends_with("ok")).count(), 5, "{out}");
    }

    #[test]
    fn sim_metrics_json_is_byte_identical_per_seed() {
        let o = SimOptions {
            loss: 0.2,
            dup: 0.1,
            delay_ms: 20,
            jitter_ms: 100,
            duration_ms: 30_000,
            seed: 23,
            metrics_json: true,
            ..Default::default()
        };
        let a = cmd_sim(&o).unwrap().output;
        let b = cmd_sim(&o).unwrap().output;
        assert_eq!(a, b, "metrics JSON must be reproducible byte-for-byte");
        assert!(a.contains("\"digest\":\""), "{a}");
        assert!(a.contains("proto.offers_sent"), "{a}");
    }

    #[test]
    fn sim_metrics_text_includes_transport_counters() {
        let o = SimOptions {
            loss: 0.2,
            duration_ms: 30_000,
            seed: 5,
            metrics: true,
            ..Default::default()
        };
        let out = cmd_sim(&o).unwrap().output;
        assert!(out.contains("-- metrics"), "{out}");
        assert!(out.contains("sim.transport.to_manager.sent"), "{out}");
        assert!(out.contains("hist lp."), "solver histograms must record: {out}");
    }

    fn trace_to_string(o: &SimOptions, full: bool) -> Result<String, String> {
        let mut buf = Vec::new();
        cmd_trace(o, full, &mut buf)?;
        Ok(String::from_utf8(buf).expect("trace output is UTF-8"))
    }

    #[test]
    fn trace_census_is_reproducible_and_full_dump_carries_digest() {
        let o = SimOptions { loss: 0.2, duration_ms: 30_000, seed: 7, ..Default::default() };
        let a = trace_to_string(&o, false).unwrap();
        let b = trace_to_string(&o, false).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("digest"), "{a}");
        assert!(a.contains("Offer"), "{a}");
        let full = trace_to_string(&o, true).unwrap();
        let digest_line = full.lines().last().unwrap();
        assert!(digest_line.starts_with("digest "), "{digest_line}");
        assert!(trace_to_string(&SimOptions { sweep: true, ..o }, false).is_err());
    }

    #[test]
    fn spans_reports_complete_flows_and_phase_quantiles() {
        let o = SimOptions { duration_ms: 60_000, seed: 42, ..Default::default() };
        let a = cmd_spans(&o, None, None).unwrap();
        let b = cmd_spans(&o, None, None).unwrap();
        assert_eq!(a, b, "span analytics must be byte-identical per seed");
        assert!(a.contains("transfers"), "{a}");
        assert!(a.contains("registered"), "{a}");
        assert!(!a.contains("[INCOMPLETE]"), "perfect wire must yield complete trees: {a}");
        assert!(a.contains("phase latency"), "{a}");
        assert!(a.contains("critical path"), "{a}");
        assert!(a.contains("hosted"), "{a}");
        // --phase narrows the latency table; --flow narrows the flow table
        let only_offer = cmd_spans(&o, None, Some("offer")).unwrap();
        assert!(only_offer.contains("offer"), "{only_offer}");
        assert!(!only_offer.lines().any(|l| l.starts_with("hosted ")), "{only_offer}");
        let only_t1 = cmd_spans(&o, Some(1), None).unwrap();
        assert!(only_t1.contains("t:1"), "{only_t1}");
        assert!(!only_t1.contains("\nn:"), "registrations filtered out: {only_t1}");
        assert!(cmd_spans(&SimOptions { sweep: true, ..o }, None, None).is_err());
    }

    #[test]
    fn sim_slo_breach_is_reported_and_flagged() {
        let o = SimOptions {
            loss: 0.25,
            dup: 0.1,
            delay_ms: 20,
            jitter_ms: 100,
            duration_ms: 60_000,
            seed: 9,
            metrics_json: true,
            slo: Some("retransmit_rate<=0.0,convergence<=1".into()),
            ..Default::default()
        };
        let run = cmd_sim(&o).unwrap();
        assert!(run.slo_breached, "a lossy wire must breach a zero-retransmit budget");
        assert!(run.output.contains("-- slo"), "{}", run.output);
        assert!(run.output.contains("breach rule=retransmit_rate"), "{}", run.output);
        assert!(run.output.contains("\"slo_breaches\":[\"breach"), "{}", run.output);
        // a satisfied spec keeps the flag down
        let ok = cmd_sim(&SimOptions {
            slo: Some("abandons<=1000".into()),
            metrics_json: false,
            ..o.clone()
        })
        .unwrap();
        assert!(!ok.slo_breached, "{}", ok.output);
        assert!(ok.output.contains("0 breach(es)"), "{}", ok.output);
        // junk specs fail loudly before any run
        assert!(cmd_sim(&SimOptions { slo: Some("bogus<=1".into()), ..o }).is_err());
    }

    #[test]
    fn sim_injected_breach_writes_the_postmortem_dump() {
        let path = std::env::temp_dir().join("dustctl-test-postmortem.txt");
        let _ = std::fs::remove_file(&path);
        let o = SimOptions {
            duration_ms: 30_000,
            seed: 5,
            inject_breach: true,
            postmortem: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let err = cmd_sim(&o).unwrap_err();
        assert!(err.contains("conservation broken"), "{err}");
        assert!(err.contains("postmortem written to"), "{err}");
        let dump = std::fs::read_to_string(&path).expect("dump must exist");
        assert!(dump.starts_with("postmortem reason="), "{dump}");
        assert!(dump.contains("seed=5"), "{dump}");
        let last = dump.lines().last().unwrap();
        assert!(last.starts_with("digest "), "{last}");
        // deterministic: a second breach run reproduces the dump exactly
        let _ = cmd_sim(&o).unwrap_err();
        assert_eq!(dump, std::fs::read_to_string(&path).unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sim_prometheus_exposition_renders_all_three_kinds() {
        let o = SimOptions {
            loss: 0.2,
            duration_ms: 30_000,
            seed: 5,
            metrics_prom: true,
            ..Default::default()
        };
        let out = cmd_sim(&o).unwrap().output;
        assert!(out.contains("-- prometheus"), "{out}");
        assert!(out.contains("# TYPE dust_proto_offers_sent counter"), "{out}");
        assert!(out.contains("_bucket{le=\"+Inf\"}"), "{out}");
    }

    #[test]
    fn sim_rejects_bad_probabilities() {
        assert!(cmd_sim(&SimOptions { loss: 1.5, ..Default::default() }).is_err());
        assert!(cmd_sim(&SimOptions { dup: -0.1, ..Default::default() }).is_err());
        assert!(cmd_sim(&SimOptions { duration_ms: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn scenario_help_lists_every_registry_entry() {
        let run =
            cmd_sim(&SimOptions { scenario: Some("help".into()), ..Default::default() }).unwrap();
        for sc in registry::all() {
            assert!(run.output.contains(sc.name), "{}", run.output);
            assert!(run.output.contains(sc.slo_spec), "{}", run.output);
        }
        assert!(!run.slo_breached);
    }

    #[test]
    fn scenario_run_is_slo_gated_and_byte_identical_per_seed() {
        let o = SimOptions {
            scenario: Some("int_burst".into()),
            seed: 11,
            metrics_json: true,
            ..Default::default()
        };
        let a = cmd_sim(&o).unwrap();
        let b = cmd_sim(&o).unwrap();
        assert_eq!(a.output, b.output, "scenario runs must be reproducible byte-for-byte");
        assert!(!a.slo_breached, "{}", a.output);
        assert!(a.output.contains("\"scenario\":\"int_burst\""), "{}", a.output);
        assert!(a.output.contains("\"digest\":\""), "{}", a.output);
        assert!(a.output.contains("\"slo_breaches\":[]"), "{}", a.output);
        assert!(a.output.contains("-- slo --"), "{}", a.output);
    }

    #[test]
    fn scenario_duration_override_shrinks_the_run() {
        let o = SimOptions {
            scenario: Some("testbed".into()),
            duration_ms: 30_000,
            duration_explicit: true,
            ..Default::default()
        };
        let run = cmd_sim(&o).unwrap();
        assert!(run.output.contains("30s simulated"), "{}", run.output);
    }

    #[test]
    fn scenario_slo_override_can_force_a_breach_and_postmortem() {
        let path = std::env::temp_dir().join("dustctl-test-scenario-postmortem.txt");
        let _ = std::fs::remove_file(&path);
        let o = SimOptions {
            scenario: Some("testbed".into()),
            slo: Some("convergence<=1".into()),
            postmortem: Some(path.to_string_lossy().into_owned()),
            seed: 3,
            ..Default::default()
        };
        let run = cmd_sim(&o).unwrap();
        assert!(run.slo_breached, "an impossible bound must breach:\n{}", run.output);
        assert!(run.output.contains("postmortem written to"), "{}", run.output);
        let dump = std::fs::read_to_string(&path).expect("dump must exist");
        assert!(dump.starts_with("postmortem reason="), "{dump}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sim_profile_writes_folded_stacks_without_perturbing_json() {
        let path = std::env::temp_dir().join("dustctl-test-sim-profile.folded");
        let _ = std::fs::remove_file(&path);
        let plain = SimOptions {
            loss: 0.2,
            duration_ms: 30_000,
            seed: 23,
            metrics_json: true,
            ..Default::default()
        };
        let profiled =
            SimOptions { profile: Some(path.to_string_lossy().into_owned()), ..plain.clone() };
        let a = cmd_sim(&plain).unwrap().output;
        let b = cmd_sim(&profiled).unwrap().output;
        // the profiler must not perturb anything deterministic: the JSON
        // line (metrics + trace digest) is bit-identical with it on
        let json = |s: &str| s.lines().find(|l| l.starts_with('{')).unwrap().to_string();
        assert_eq!(json(&a), json(&b), "profiling must not leak into --metrics-json");
        assert!(b.contains("profile written to"), "{b}");
        let dump = std::fs::read_to_string(&path).expect("artifact must exist");
        assert!(dump.starts_with("# run: loss 20%\n# dust profile v1"), "{dump}");
        assert!(dump.contains("count sim.event.stat_emission;sim.resource_walk "), "{dump}");
        assert!(dump.lines().any(|l| l.starts_with("self ")), "{dump}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_command_scope_counts_are_deterministic_per_seed() {
        let o = ProfileOptions { seed: 17, duration_ms: Some(20_000), ..Default::default() };
        let a = cmd_profile("testbed", &o).unwrap();
        let b = cmd_profile("testbed", &o).unwrap();
        fn counts(s: &str) -> Vec<&str> {
            s.lines().filter(|l| l.starts_with("count ")).collect()
        }
        assert_eq!(counts(&a), counts(&b), "scope counts must be byte-identical per seed");
        assert!(!counts(&a).is_empty(), "{a}");
        assert!(a.lines().any(|l| l.starts_with("self ")), "{a}");
        assert!(a.starts_with("profile: testbed, seed 17, engine event"), "{a}");
    }

    #[test]
    fn profile_command_handles_scale_fleet_help_and_unknowns() {
        let o = ProfileOptions { duration_ms: Some(2_000), ..Default::default() };
        let out = cmd_profile("scale_fleet", &o).unwrap();
        assert!(out.starts_with("profile: scale_fleet (k=24)"), "{out}");
        assert!(out.contains("count sim.event.telemetry_sample;sim.telemetry_batch "), "{out}");
        let help = cmd_profile("help", &ProfileOptions::default()).unwrap();
        assert!(help.contains("scale_fleet"), "{help}");
        assert!(help.contains("testbed"), "{help}");
        let err = cmd_profile("figment", &ProfileOptions::default()).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        assert!(err.contains("scale_fleet"), "{err}");
    }

    #[test]
    fn place_profile_covers_the_solver_stack() {
        let path = std::env::temp_dir().join("dustctl-test-place-profile.folded");
        let _ = std::fs::remove_file(&path);
        let opts = PlaceOptions {
            fat_tree: Some(4),
            partitions: Some(2),
            batch: 2,
            seed: 7,
            profile: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let out = cmd_place(None, &opts).unwrap();
        assert!(out.contains("profile written to"), "{out}");
        let dump = std::fs::read_to_string(&path).expect("artifact must exist");
        assert!(dump.contains("cost.build_matrix"), "{dump}");
        assert!(dump.contains("lp.partition.solve"), "{dump}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scenario_rejects_fault_flags_sweeps_and_unknown_names() {
        let base = || SimOptions { scenario: Some("chaos".into()), ..Default::default() };
        let err = cmd_sim(&SimOptions { loss: 0.1, ..base() }).unwrap_err();
        assert!(err.contains("carries its own fault model"), "{err}");
        let err = cmd_sim(&SimOptions { sweep: true, ..base() }).unwrap_err();
        assert!(err.contains("chaos ladder"), "{err}");
        let err = cmd_sim(&SimOptions { scenario: Some("figment".into()), ..Default::default() })
            .unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        assert!(err.contains("zone_storm"), "the error must list the registry: {err}");
    }
}
