//! Property tests for the dustctl network-state format: render → parse is
//! the identity, and the parser never panics on arbitrary input.

use dust::prelude::*;
use dust_cli::format::{parse_nmdb, render_nmdb};
use proptest::prelude::*;

fn arb_nmdb() -> impl Strategy<Value = Nmdb> {
    (2usize..10, proptest::collection::vec((0usize..10, 0usize..10, 1u32..100_000, 0u32..=100), 0..16))
        .prop_flat_map(|(n, raw_edges)| {
            proptest::collection::vec(
                (0.0f64..=100.0, 0.0f64..5_000.0, any::<bool>()),
                n..=n,
            )
            .prop_map(move |states| {
                let mut g = Graph::with_nodes(states.len());
                for (a, b, cap, util) in &raw_edges {
                    let (a, b) = (a % states.len(), b % states.len());
                    if a != b {
                        g.add_edge(
                            NodeId(a as u32),
                            NodeId(b as u32),
                            Link::new(f64::from(*cap), f64::from(*util) / 100.0),
                        );
                    }
                }
                let states = states
                    .into_iter()
                    .map(|(u, d, cap)| {
                        let s = NodeState::new(u, d);
                        if cap {
                            s
                        } else {
                            s.non_offloading()
                        }
                    })
                    .collect();
                Nmdb::new(g, states)
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// render → parse round-trips node states and edges exactly.
    #[test]
    fn roundtrip(nmdb in arb_nmdb()) {
        let text = render_nmdb(&nmdb);
        let back = parse_nmdb(&text).expect("rendered file must parse");
        prop_assert_eq!(back.graph.node_count(), nmdb.graph.node_count());
        prop_assert_eq!(back.graph.edge_count(), nmdb.graph.edge_count());
        for (a, b) in back.states.iter().zip(&nmdb.states) {
            prop_assert!((a.utilization - b.utilization).abs() < 1e-12);
            prop_assert!((a.data_mb - b.data_mb).abs() < 1e-12);
            prop_assert_eq!(a.offload_capable, b.offload_capable);
        }
        for (x, y) in back.graph.edges().iter().zip(nmdb.graph.edges()) {
            prop_assert_eq!((x.a, x.b), (y.a, y.b));
            prop_assert!((x.link.capacity_mbps - y.link.capacity_mbps).abs() < 1e-9);
            prop_assert!((x.link.utilization - y.link.utilization).abs() < 1e-12);
        }
    }

    /// The parser is total: garbage lines yield errors, never panics.
    #[test]
    fn parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = parse_nmdb(&text);
    }
}
