//! Seeded random-instance tests for the dustctl network-state format:
//! render → parse is the identity, and the parser never panics on
//! arbitrary input.

use dust::prelude::*;
use dust_cli::format::{parse_nmdb, render_nmdb};

/// A random NMDB with 2–9 nodes, up to 15 random edges (self-loops
//  skipped), and randomized node states. Deterministic in `seed`.
fn arb_nmdb(seed: u64) -> Nmdb {
    let mut rng = SplitMix64::new(seed);
    let n = 2 + rng.below(8) as usize;
    let mut g = Graph::with_nodes(n);
    let edges = rng.below(16) as usize;
    for _ in 0..edges {
        let a = rng.below(n as u64) as usize;
        let b = rng.below(n as u64) as usize;
        if a != b {
            let cap = 1.0 + rng.below(100_000) as f64;
            let util = rng.below(101) as f64 / 100.0;
            g.add_edge(NodeId(a as u32), NodeId(b as u32), Link::new(cap, util));
        }
    }
    let states = (0..n)
        .map(|_| {
            let s = NodeState::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 5_000.0));
            if rng.gen_bool(0.5) {
                s
            } else {
                s.non_offloading()
            }
        })
        .collect();
    Nmdb::new(g, states)
}

/// render → parse round-trips node states and edges exactly.
#[test]
fn roundtrip() {
    for seed in 0..128u64 {
        let nmdb = arb_nmdb(seed);
        let text = render_nmdb(&nmdb);
        let back = parse_nmdb(&text).expect("rendered file must parse");
        assert_eq!(back.graph.node_count(), nmdb.graph.node_count(), "seed {seed}");
        assert_eq!(back.graph.edge_count(), nmdb.graph.edge_count(), "seed {seed}");
        for (a, b) in back.states.iter().zip(&nmdb.states) {
            assert!((a.utilization - b.utilization).abs() < 1e-12, "seed {seed}");
            assert!((a.data_mb - b.data_mb).abs() < 1e-12, "seed {seed}");
            assert_eq!(a.offload_capable, b.offload_capable, "seed {seed}");
        }
        for (x, y) in back.graph.edges().iter().zip(nmdb.graph.edges()) {
            assert_eq!((x.a, x.b), (y.a, y.b), "seed {seed}");
            assert!((x.link.capacity_mbps - y.link.capacity_mbps).abs() < 1e-9, "seed {seed}");
            assert!((x.link.utilization - y.link.utilization).abs() < 1e-12, "seed {seed}");
        }
    }
}

/// The parser is total: garbage lines yield errors, never panics.
#[test]
fn parser_never_panics() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.below(400) as usize;
        let text: String = (0..len)
            .map(|_| {
                // printable ASCII plus newlines, same alphabet as "[ -~\n]"
                let c = rng.below(96) as u8;
                if c == 95 {
                    '\n'
                } else {
                    (b' ' + c) as char
                }
            })
            .collect();
        let _ = parse_nmdb(&text);
    }
}
