//! Seeded random-series tests: Gorilla compression must be lossless on
//! arbitrary monotone time series, and TSDB invariants must hold under
//! random usage.

use dust_telemetry::{compress, decompress, Series, Tsdb};
use dust_topology::SplitMix64;

/// Arbitrary monotone series: random non-negative deltas and float values
/// (including weird ones: infinities, extreme magnitudes, subnormals).
fn arb_series(rng: &mut SplitMix64) -> Series {
    let len = rng.below(200) as usize;
    let mut s = Series::default();
    let mut t = 0u64;
    for _ in 0..len {
        t += rng.below(5_000);
        let v = match rng.below(10) {
            0 => 0.0,
            1 => match rng.below(4) {
                0 => f64::INFINITY,
                1 => f64::NEG_INFINITY,
                2 => f64::MAX,
                _ => f64::MIN_POSITIVE,
            },
            _ => rng.range_f64(-1.0e6, 1.0e6),
        };
        s.push(t, v);
    }
    s
}

/// Lossless round trip for arbitrary series.
#[test]
fn compression_is_lossless() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let s = arb_series(&mut rng);
        let block = compress(&s);
        assert_eq!(block.count, s.len(), "seed {seed}");
        let back = decompress(&block).expect("well-formed block must decompress");
        assert_eq!(back.points(), s.points(), "seed {seed}");
    }
}

/// Steady cadences compress below raw size once the series is long
/// enough to amortize the 17-byte header.
#[test]
fn steady_series_beat_raw() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let n = rng.range_u64(10, 300) as usize;
        let period = rng.range_u64(1, 10_000);
        let v = rng.range_f64(-100.0, 100.0);
        let mut s = Series::default();
        for i in 0..n as u64 {
            s.push(i * period, v);
        }
        let block = compress(&s);
        assert!(
            block.size_bytes() < n * 16,
            "seed {seed}: {} bytes vs raw {}",
            block.size_bytes(),
            n * 16
        );
    }
}

/// Range queries return exactly the in-window points, in order.
#[test]
fn range_is_exact() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let s = arb_series(&mut rng);
        let start = rng.below(100_000);
        let end = start.saturating_add(rng.below(100_000));
        let got = s.range(start, end);
        let expect: Vec<_> =
            s.points().iter().copied().filter(|p| p.ts_ms >= start && p.ts_ms < end).collect();
        assert_eq!(got, &expect[..], "seed {seed}");
    }
}

/// Downsampling never yields more points than the source.
#[test]
fn downsample_shrinks() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let s = arb_series(&mut rng);
        let bucket = rng.range_u64(1, 5_000);
        // skip pathological float inputs
        if s.points().iter().any(|p| !p.value.is_finite()) {
            continue;
        }
        let d = s.downsample(bucket);
        assert!(d.len() <= s.len(), "seed {seed}");
        if !s.is_empty() {
            assert!(!d.is_empty(), "seed {seed}");
        }
    }
}

/// Retention trims exactly the points older than the horizon.
#[test]
fn trim_respects_horizon() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let s = arb_series(&mut rng);
        let now = rng.below(2_000_000);
        let horizon = rng.below(1_000_000);
        let mut t = s.clone();
        let dropped = t.trim(now, horizon);
        let cutoff = now.saturating_sub(horizon);
        assert_eq!(dropped + t.len(), s.len(), "seed {seed}");
        assert!(t.points().iter().all(|p| p.ts_ms >= cutoff), "seed {seed}");
    }
}

/// TSDB appends are isolated per series name.
#[test]
fn tsdb_series_isolated() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        // 1–29 names over the same alphabet as the old "[a-c]{1,2}" regex
        let count = rng.range_u64(1, 30) as usize;
        let names: Vec<String> = (0..count)
            .map(|_| {
                let len = 1 + rng.below(2) as usize;
                (0..len).map(|_| (b'a' + rng.below(3) as u8) as char).collect()
            })
            .collect();
        let mut db = Tsdb::new();
        for (i, n) in names.iter().enumerate() {
            db.append(n, i as u64, i as f64);
        }
        let total: usize = db.series_names().iter().map(|n| db.series(n).unwrap().len()).sum();
        assert_eq!(total, names.len(), "seed {seed}");
    }
}

use dust_telemetry::{deframe, frame};

/// Framing round-trips any compressed block, and single-bit corruption
/// anywhere in the payload or checksum is always detected.
#[test]
fn framing_roundtrip_and_corruption() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let s = arb_series(&mut rng);
        let flip_bit = rng.next_u64() as u32;
        let block = compress(&s);
        let framed = frame(&block);
        let (back, used) = deframe(&framed).expect("own frames must parse");
        assert_eq!(used, framed.len(), "seed {seed}");
        assert_eq!(&back, &block, "seed {seed}");

        // flip one bit beyond the magic: must fail (header fields may fail
        // differently than payload, but never silently succeed with
        // different content)
        if framed.len() > 5 {
            let idx = 4 + (flip_bit as usize % (framed.len() - 4));
            let bit = 1u8 << (flip_bit % 8);
            let mut corrupt = framed.clone();
            corrupt[idx] ^= bit;
            match deframe(&corrupt) {
                Err(_) => {}
                Ok((b, _)) => assert_eq!(
                    b, block,
                    "seed {seed}: a parse that succeeds after a bit flip must still match (flip hit padding)"
                ),
            }
        }
    }
}

/// Deframing arbitrary bytes never panics.
#[test]
fn deframe_is_total() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.below(300) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = deframe(&bytes);
        let _ = dust_telemetry::deframe_stream(&bytes);
    }
}
