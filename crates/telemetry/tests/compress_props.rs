//! Property tests: Gorilla compression must be lossless on arbitrary
//! monotone time series, and TSDB invariants must hold under random usage.

use dust_telemetry::{compress, decompress, Series, Tsdb};
use proptest::prelude::*;

/// Arbitrary monotone series: random non-negative deltas and float values
/// (including weird ones).
fn arb_series() -> impl Strategy<Value = Series> {
    proptest::collection::vec(
        (
            0u64..5_000,
            prop_oneof![
                8 => (-1.0e6f64..1.0e6).boxed(),
                1 => Just(0.0).boxed(),
                1 => prop_oneof![
                    Just(f64::INFINITY),
                    Just(f64::NEG_INFINITY),
                    Just(f64::MAX),
                    Just(f64::MIN_POSITIVE),
                ].boxed(),
            ],
        ),
        0..200,
    )
    .prop_map(|deltas| {
        let mut s = Series::default();
        let mut t = 0u64;
        for (dt, v) in deltas {
            t += dt;
            s.push(t, v);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lossless round trip for arbitrary series.
    #[test]
    fn compression_is_lossless(s in arb_series()) {
        let block = compress(&s);
        prop_assert_eq!(block.count, s.len());
        let back = decompress(&block).expect("well-formed block must decompress");
        prop_assert_eq!(back.points(), s.points());
    }

    /// Steady cadences compress below raw size once the series is long
    /// enough to amortize the 17-byte header.
    #[test]
    fn steady_series_beat_raw(n in 10usize..300, period in 1u64..10_000, v in -100.0f64..100.0) {
        let mut s = Series::default();
        for i in 0..n as u64 {
            s.push(i * period, v);
        }
        let block = compress(&s);
        prop_assert!(block.size_bytes() < n * 16,
            "{} bytes vs raw {}", block.size_bytes(), n * 16);
    }

    /// Range queries return exactly the in-window points, in order.
    #[test]
    fn range_is_exact(s in arb_series(), a in 0u64..100_000, w in 0u64..100_000) {
        let (start, end) = (a, a.saturating_add(w));
        let got = s.range(start, end);
        let expect: Vec<_> = s.points().iter().copied()
            .filter(|p| p.ts_ms >= start && p.ts_ms < end)
            .collect();
        prop_assert_eq!(got, &expect[..]);
    }

    /// Downsampling never yields more points than the source and preserves
    /// the global mean within floating tolerance for full coverage.
    #[test]
    fn downsample_shrinks(s in arb_series(), bucket in 1u64..5_000) {
        // skip pathological float inputs for the mean check
        if s.points().iter().any(|p| !p.value.is_finite()) {
            return Ok(());
        }
        let d = s.downsample(bucket);
        prop_assert!(d.len() <= s.len());
        if !s.is_empty() {
            prop_assert!(!d.is_empty());
        }
    }

    /// Retention trims exactly the points older than the horizon.
    #[test]
    fn trim_respects_horizon(s in arb_series(), now in 0u64..2_000_000, horizon in 0u64..1_000_000) {
        let mut t = s.clone();
        let dropped = t.trim(now, horizon);
        let cutoff = now.saturating_sub(horizon);
        prop_assert_eq!(dropped + t.len(), s.len());
        prop_assert!(t.points().iter().all(|p| p.ts_ms >= cutoff));
    }

    /// TSDB appends are isolated per series name.
    #[test]
    fn tsdb_series_isolated(names in proptest::collection::vec("[a-c]{1,2}", 1..30)) {
        let mut db = Tsdb::new();
        for (i, n) in names.iter().enumerate() {
            db.append(n, i as u64, i as f64);
        }
        let total: usize = db.series_names().iter()
            .map(|n| db.series(n).unwrap().len())
            .sum();
        prop_assert_eq!(total, names.len());
    }
}

use dust_telemetry::{deframe, frame};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Framing round-trips any compressed block, and single-bit corruption
    /// anywhere in the payload or checksum is always detected.
    #[test]
    fn framing_roundtrip_and_corruption(s in arb_series(), flip_bit in any::<u32>()) {
        let block = compress(&s);
        let framed = frame(&block);
        let (back, used) = deframe(&framed).expect("own frames must parse");
        prop_assert_eq!(used, framed.len());
        prop_assert_eq!(&back, &block);

        // flip one bit beyond the magic: must fail (header fields may fail
        // differently than payload, but never silently succeed with
        // different content)
        if framed.len() > 5 {
            let idx = 4 + (flip_bit as usize % (framed.len() - 4));
            let bit = 1u8 << (flip_bit % 8);
            let mut corrupt = framed.clone();
            corrupt[idx] ^= bit;
            match deframe(&corrupt) {
                Err(_) => {}
                Ok((b, _)) => prop_assert_eq!(
                    b, block,
                    "a parse that succeeds after a bit flip must still match (flip hit padding)"
                ),
            }
        }
    }

    /// Deframing arbitrary bytes never panics.
    #[test]
    fn deframe_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = deframe(&bytes);
        let _ = dust_telemetry::deframe_stream(&bytes);
    }
}
