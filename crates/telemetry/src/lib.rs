//! In-device telemetry substrate for the DUST reproduction (§III-A).
//!
//! * [`agents`] — the testbed's ten user-defined monitor agents with the
//!   CPU/memory cost model calibrated against Fig. 1 (≈ 100 % of one core
//!   at 20 % line-rate traffic, ≈ 1.2 GiB resident);
//! * [`tsdb`] — the node-local Time Series Database the agents write to;
//! * [`compress`](mod@compress) — Gorilla-style in-situ compression (delta-of-delta
//!   timestamps, XOR values) as performed by SmartNICs in the architecture;
//! * [`federation`] — the Time-Series Federation aggregating series across
//!   the network.
//!
//! # Example
//!
//! ```
//! use dust_telemetry::{MonitorAgent, aggregate_load, Tsdb, compress, decompress};
//!
//! // the standard ten-agent deployment at 20 % line rate
//! let agents = MonitorAgent::standard_deployment();
//! let load = aggregate_load(&agents, 0.2);
//! assert!((load.cpu_percent - 100.0).abs() < 5.0); // Fig. 1 calibration
//!
//! // agents write series; blocks compress losslessly
//! let mut db = Tsdb::new();
//! for t in 0..100u64 {
//!     db.append("cpu", t * 1000, load.cpu_percent);
//! }
//! let block = compress(db.series("cpu").unwrap());
//! assert!(block.ratio() > 10.0);
//! assert_eq!(decompress(&block).unwrap().len(), 100);
//! ```

#![warn(missing_docs)]

pub mod agents;
pub mod anomaly;
pub mod compress;
pub mod federation;
pub mod framing;
pub mod rules;
pub mod tsdb;

pub use agents::{aggregate_load, AgentKind, AgentLoad, IntSampler, IntSampling, MonitorAgent};
pub use anomaly::{EwmaDetector, TrendForecaster};
pub use compress::{compress, compression_ratio, decompress, CompressedBlock};
pub use federation::{Aggregation, Federation};
pub use framing::{crc32, deframe, deframe_stream, frame, FrameError};
pub use rules::{Alert, Comparison, Rule, RuleEngine};
pub use tsdb::{Point, Series, Tsdb};
