//! Framing for compressed telemetry blocks in flight.
//!
//! When a Busy node streams its series to an Offload-destination
//! (§III-A's in-situ compression + §III-C's lowest-priority transport,
//! where frames may legitimately be discarded mid-stream), the receiver
//! must detect truncated or corrupted blocks. A frame wraps one
//! [`CompressedBlock`] with a magic, the point count, a length, and a
//! CRC-32 over everything after the magic (header varints included, so a
//! flipped bit in `count` cannot silently change the block):
//!
//! ```text
//! magic(4) | count(varint) | len(varint) | payload(len) | crc32(4, LE)
//! ```

use crate::compress::CompressedBlock;

/// Frame magic: `DTF1` (DUST Telemetry Frame v1).
pub const MAGIC: [u8; 4] = *b"DTF1";

/// Framing/deframing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Frame shorter than its own header or declared length.
    Truncated,
    /// Magic bytes mismatch.
    BadMagic,
    /// CRC-32 mismatch — header or payload corrupted in flight.
    BadChecksum {
        /// CRC carried by the frame.
        expected: u32,
        /// CRC computed over the received header + payload.
        actual: u32,
    },
    /// A varint header field was malformed.
    BadHeader,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:#010x}, payload is {actual:#010x}"
                )
            }
            FrameError::BadHeader => write!(f, "malformed frame header"),
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-free
/// bitwise implementation — adequate for telemetry frame sizes.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let b = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Wrap a compressed block into a checksummed frame.
pub fn frame(block: &CompressedBlock) -> Vec<u8> {
    let mut out = Vec::with_capacity(block.bytes.len() + 16);
    out.extend_from_slice(&MAGIC);
    put_varint(&mut out, block.count as u64);
    put_varint(&mut out, block.bytes.len() as u64);
    out.extend_from_slice(&block.bytes);
    let crc = crc32(&out[MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Unwrap a frame, verifying magic, length, and checksum. Returns the
/// block and the total frame size consumed (frames may be concatenated).
pub fn deframe(buf: &[u8]) -> Result<(CompressedBlock, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated);
    }
    if buf[..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let mut pos = 4;
    let count = read_varint(buf, &mut pos).ok_or(FrameError::BadHeader)? as usize;
    let len = read_varint(buf, &mut pos).ok_or(FrameError::BadHeader)? as usize;
    let end = pos.checked_add(len).ok_or(FrameError::BadHeader)?;
    if buf.len() < end + 4 {
        return Err(FrameError::Truncated);
    }
    let payload = &buf[pos..end];
    let expected = u32::from_le_bytes(buf[end..end + 4].try_into().expect("4 bytes checked"));
    let actual = crc32(&buf[MAGIC.len()..end]);
    if expected != actual {
        return Err(FrameError::BadChecksum { expected, actual });
    }
    Ok((CompressedBlock { count, bytes: payload.to_vec() }, end + 4))
}

/// Split a buffer of concatenated frames into blocks, stopping at the
/// first error; returns the blocks plus the unconsumed tail offset.
pub fn deframe_stream(buf: &[u8]) -> (Vec<CompressedBlock>, usize) {
    let mut blocks = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        match deframe(&buf[pos..]) {
            Ok((b, used)) => {
                blocks.push(b);
                pos += used;
            }
            Err(_) => break,
        }
    }
    (blocks, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress, decompress};
    use crate::tsdb::Series;

    fn sample_block() -> CompressedBlock {
        let mut s = Series::default();
        for t in 0..50u64 {
            s.push(t * 1000, 40.0 + (t % 9) as f64);
        }
        compress(&s)
    }

    #[test]
    fn crc32_known_vectors() {
        // standard test vector: CRC-32("123456789") = 0xCBF43926
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let block = sample_block();
        let framed = frame(&block);
        let (back, used) = deframe(&framed).unwrap();
        assert_eq!(used, framed.len());
        assert_eq!(back, block);
        // and the payload still decompresses
        assert_eq!(decompress(&back).unwrap().len(), 50);
    }

    #[test]
    fn corruption_detected() {
        let block = sample_block();
        let mut framed = frame(&block);
        let mid = framed.len() / 2;
        framed[mid] ^= 0x40;
        match deframe(&framed) {
            Err(FrameError::BadChecksum { .. }) => {}
            other => panic!("corruption must be caught, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_bad_magic() {
        let framed = frame(&sample_block());
        for cut in [0, 3, 7, framed.len() - 1] {
            assert!(deframe(&framed[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert_eq!(deframe(&bad), Err(FrameError::BadMagic));
    }

    #[test]
    fn stream_of_frames_splits() {
        let b1 = sample_block();
        let mut s2 = Series::default();
        s2.push(5, 1.0);
        let b2 = compress(&s2);
        let mut stream = frame(&b1);
        stream.extend_from_slice(&frame(&b2));
        stream.extend_from_slice(b"garbage");
        let (blocks, consumed) = deframe_stream(&stream);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], b1);
        assert_eq!(blocks[1], b2);
        assert_eq!(consumed, stream.len() - 7);
    }

    #[test]
    fn empty_block_frames_fine() {
        let empty = compress(&Series::default());
        let (back, _) = deframe(&frame(&empty)).unwrap();
        assert_eq!(back.count, 0);
    }
}
