//! Online anomaly detection and overload forecasting.
//!
//! The paper motivates in-device telemetry with "providing in-depth device
//! telemetry and predicting failures in advance" (abstract) and ships a
//! fault-finder agent (§V-A footnote 1). This module supplies the analytic
//! half of that story with two small online estimators:
//!
//! * [`EwmaDetector`] — exponentially-weighted mean/variance with a
//!   z-score test, flagging samples that deviate from recent behaviour
//!   (spikes, stuck-at faults, level shifts);
//! * [`TrendForecaster`] — double-exponential (Holt) smoothing that
//!   projects a series forward, answering "when will this node cross
//!   `C_max`?" before it happens — the proactive trigger the DUST-Manager
//!   can act on instead of waiting for a Busy STAT.

/// Online EWMA mean/variance with z-score anomaly flagging.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    /// Smoothing factor in `(0, 1]`: larger forgets faster.
    alpha: f64,
    /// Z-score above which a sample is anomalous.
    z_threshold: f64,
    mean: Option<f64>,
    var: f64,
    /// Samples consumed.
    count: u64,
    /// Warm-up samples before flagging begins.
    warmup: u64,
}

impl EwmaDetector {
    /// A detector with smoothing `alpha`, flagging beyond `z_threshold`
    /// standard deviations, after a `warmup`-sample learning period.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]` or `z_threshold <= 0`.
    pub fn new(alpha: f64, z_threshold: f64, warmup: u64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1], got {alpha}");
        assert!(z_threshold > 0.0, "z threshold must be positive, got {z_threshold}");
        EwmaDetector { alpha, z_threshold, mean: None, var: 0.0, count: 0, warmup }
    }

    /// Default tuning: α = 0.1, 3σ, 10-sample warm-up.
    pub fn default_tuning() -> Self {
        Self::new(0.1, 3.0, 10)
    }

    /// Current estimate of the mean, if any samples were seen.
    pub fn mean(&self) -> Option<f64> {
        self.mean
    }

    /// Current standard-deviation estimate.
    pub fn stddev(&self) -> f64 {
        self.var.max(0.0).sqrt()
    }

    /// Consume one sample; returns `Some(z_score)` when it is anomalous.
    ///
    /// The sample is scored against the *pre-update* statistics, then
    /// folded in (so a level shift keeps flagging until the estimator
    /// adapts).
    pub fn observe(&mut self, value: f64) -> Option<f64> {
        self.count += 1;
        let Some(mean) = self.mean else {
            self.mean = Some(value);
            return None;
        };
        // variance floor so a perfectly steady series (sd = 0) still flags
        // genuine departures instead of dividing by zero
        let sd_eff = self.stddev().max(1e-6 * (1.0 + mean.abs()));
        let z = (value - mean).abs() / sd_eff;
        let anomalous = self.count > self.warmup && z > self.z_threshold;

        // EWMA update (West 1979-style coupled mean/variance)
        let delta = value - mean;
        let new_mean = mean + self.alpha * delta;
        self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta);
        self.mean = Some(new_mean);
        anomalous.then_some(z)
    }
}

/// Holt double-exponential smoothing: level + trend, with crossing
/// forecasts.
#[derive(Debug, Clone)]
pub struct TrendForecaster {
    /// Level smoothing factor.
    alpha: f64,
    /// Trend smoothing factor.
    beta: f64,
    level: Option<f64>,
    trend: f64,
    last_ts_ms: Option<u64>,
    /// Nominal sample spacing used to normalize the trend, ms.
    step_ms: u64,
}

impl TrendForecaster {
    /// A forecaster with level/trend smoothing and the expected sample
    /// spacing.
    ///
    /// # Panics
    /// Panics on out-of-range factors or `step_ms == 0`.
    pub fn new(alpha: f64, beta: f64, step_ms: u64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0,1]");
        assert!(step_ms > 0, "step must be positive");
        TrendForecaster { alpha, beta, level: None, trend: 0.0, last_ts_ms: None, step_ms }
    }

    /// Default tuning for 1-second telemetry: α = 0.3, β = 0.1.
    pub fn default_tuning() -> Self {
        Self::new(0.3, 0.1, 1_000)
    }

    /// Current level estimate.
    pub fn level(&self) -> Option<f64> {
        self.level
    }

    /// Current per-step trend estimate.
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Consume one timestamped sample.
    pub fn observe(&mut self, ts_ms: u64, value: f64) {
        match self.level {
            None => {
                self.level = Some(value);
                self.last_ts_ms = Some(ts_ms);
            }
            Some(level) => {
                // normalize irregular spacing into whole steps
                let dt = ts_ms.saturating_sub(self.last_ts_ms.unwrap_or(ts_ms));
                let steps = (dt as f64 / self.step_ms as f64).max(1e-9);
                let predicted = level + self.trend * steps;
                let new_level = self.alpha * value + (1.0 - self.alpha) * predicted;
                let step_trend = (new_level - level) / steps;
                self.trend = self.beta * step_trend + (1.0 - self.beta) * self.trend;
                self.level = Some(new_level);
                self.last_ts_ms = Some(ts_ms);
            }
        }
    }

    /// Forecast the value `horizon_ms` after the last sample.
    pub fn forecast(&self, horizon_ms: u64) -> Option<f64> {
        let level = self.level?;
        Some(level + self.trend * horizon_ms as f64 / self.step_ms as f64)
    }

    /// Milliseconds (after the last sample) until the series is projected
    /// to reach `threshold`, `None` when it never will on the current
    /// trend (flat/receding, or already past it counts as `Some(0)`).
    pub fn ms_until(&self, threshold: f64) -> Option<u64> {
        let level = self.level?;
        if level >= threshold {
            return Some(0);
        }
        if self.trend <= 1e-12 {
            return None;
        }
        let steps = (threshold - level) / self.trend;
        Some((steps * self.step_ms as f64).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_series_never_flags() {
        let mut d = EwmaDetector::default_tuning();
        for i in 0..200 {
            let v = 50.0 + ((i % 5) as f64) * 0.1; // tiny periodic wiggle
            assert!(d.observe(v).is_none(), "sample {i} flagged");
        }
        assert!((d.mean().unwrap() - 50.2).abs() < 0.5);
    }

    #[test]
    fn spike_is_flagged_and_scored() {
        let mut d = EwmaDetector::default_tuning();
        for i in 0..50 {
            d.observe(50.0 + ((i % 7) as f64) * 0.2);
        }
        let z = d.observe(95.0);
        assert!(z.is_some(), "10x spike must flag");
        assert!(z.unwrap() > 3.0);
    }

    #[test]
    fn warmup_suppresses_early_flags() {
        let mut d = EwmaDetector::new(0.1, 3.0, 10);
        // wild samples inside the warm-up window never flag
        for (i, v) in [10.0, 90.0, 5.0, 80.0, 20.0].iter().enumerate() {
            assert!(d.observe(*v).is_none(), "warm-up sample {i} flagged");
        }
    }

    #[test]
    fn level_shift_eventually_adapts() {
        let mut d = EwmaDetector::default_tuning();
        for _ in 0..50 {
            d.observe(20.0);
        }
        // jump to a new regime: flags at first…
        let mut flagged = 0;
        for _ in 0..100 {
            if d.observe(60.0).is_some() {
                flagged += 1;
            }
        }
        assert!(flagged > 0, "shift must flag initially");
        // …but adapts: the tail is quiet
        let mut tail_flags = 0;
        for _ in 0..50 {
            if d.observe(60.0).is_some() {
                tail_flags += 1;
            }
        }
        assert_eq!(tail_flags, 0, "estimator must adapt to the new level");
    }

    #[test]
    fn forecaster_tracks_linear_ramp() {
        let mut f = TrendForecaster::default_tuning();
        // 1 %/s ramp sampled every second
        for t in 0..120u64 {
            f.observe(t * 1000, 10.0 + t as f64);
        }
        assert!((f.trend() - 1.0).abs() < 0.05, "trend {}", f.trend());
        // forecast 30 s out: ≈ last value + 30
        let fc = f.forecast(30_000).unwrap();
        assert!((fc - (129.0 + 30.0)).abs() < 3.0, "forecast {fc}");
    }

    #[test]
    fn ms_until_projects_crossing() {
        let mut f = TrendForecaster::default_tuning();
        for t in 0..100u64 {
            f.observe(t * 1000, 40.0 + 0.5 * t as f64); // +0.5 %/s, at ~89.5 now
        }
        // C_max = 95: about (95 − 89.5) / 0.5 ≈ 11 s away
        let eta = f.ms_until(95.0).unwrap();
        assert!((8_000..16_000).contains(&eta), "eta {eta}");
        // already above a low threshold
        assert_eq!(f.ms_until(50.0), Some(0));
        // flat series never crosses
        let mut flat = TrendForecaster::default_tuning();
        for t in 0..50u64 {
            flat.observe(t * 1000, 30.0);
        }
        assert_eq!(flat.ms_until(95.0), None);
    }

    #[test]
    fn irregular_spacing_handled() {
        let mut f = TrendForecaster::default_tuning();
        // same 1-unit-per-second ramp, sampled irregularly for long enough
        // for the slow trend term (beta = 0.1) to converge
        let mut t = 0u64;
        let gaps = [1_000u64, 2_000, 500, 3_500, 3_000, 4_000, 6_000];
        for i in 0..120 {
            t += gaps[i % gaps.len()];
            f.observe(t, t as f64 / 1000.0);
        }
        assert!((f.trend() - 1.0).abs() < 0.15, "trend {}", f.trend());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        EwmaDetector::new(0.0, 3.0, 5);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_rejected() {
        TrendForecaster::new(0.3, 0.1, 0);
    }
}
