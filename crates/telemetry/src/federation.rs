//! Time-Series Federation: network-wide aggregation over node-local TSDBs.
//!
//! "The 'Time-Series Federation' component performs the essential task of
//! aggregating data throughout the underlying network" (§III-A). The
//! federation owns no data; it queries the per-node [`Tsdb`] stores the
//! Monitor Agents feed and merges matching series across nodes.

use crate::tsdb::{Point, Series, Tsdb};
use dust_topology::NodeId;
use std::collections::BTreeMap;

/// How matching points from different nodes combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Sum across nodes (e.g. total packet rate).
    Sum,
    /// Mean across nodes (e.g. average CPU).
    Mean,
    /// Maximum across nodes (e.g. hottest switch).
    Max,
    /// Minimum across nodes.
    Min,
}

impl Aggregation {
    fn combine(self, values: &[f64]) -> f64 {
        debug_assert!(!values.is_empty());
        match self {
            Aggregation::Sum => values.iter().sum(),
            Aggregation::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Aggregation::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

/// A federation over per-node TSDBs.
#[derive(Debug, Clone, Default)]
pub struct Federation {
    stores: BTreeMap<NodeId, Tsdb>,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach (or replace) a node's TSDB.
    pub fn attach(&mut self, node: NodeId, tsdb: Tsdb) {
        self.stores.insert(node, tsdb);
    }

    /// Mutable handle to a node's store, creating it if absent (Monitor
    /// Agents write through this).
    pub fn store_mut(&mut self, node: NodeId) -> &mut Tsdb {
        self.stores.entry(node).or_default()
    }

    /// Read handle to a node's store.
    pub fn store(&self, node: NodeId) -> Option<&Tsdb> {
        self.stores.get(&node)
    }

    /// Participating nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.stores.keys().copied().collect()
    }

    /// Nodes holding a series with this name.
    pub fn holders(&self, series: &str) -> Vec<NodeId> {
        self.stores.iter().filter(|(_, db)| db.series(series).is_some()).map(|(n, _)| *n).collect()
    }

    /// Federated query: bucket every node's `series` into `bucket_ms`
    /// windows over `[start, end)`, then combine matching buckets across
    /// nodes with `agg`. Buckets covered by no node are skipped.
    pub fn query(
        &self,
        series: &str,
        start_ms: u64,
        end_ms: u64,
        bucket_ms: u64,
        agg: Aggregation,
    ) -> Series {
        assert!(bucket_ms > 0, "bucket width must be positive");
        // bucket start → per-node bucket means
        let mut buckets: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        for db in self.stores.values() {
            let Some(s) = db.series(series) else { continue };
            // per-node downsample restricted to the window
            let mut window = Series::default();
            for p in s.range(start_ms, end_ms) {
                window.push(p.ts_ms, p.value);
            }
            for Point { ts_ms, value } in window.downsample(bucket_ms).points() {
                buckets.entry(*ts_ms).or_default().push(*value);
            }
        }
        let mut out = Series::default();
        for (ts, values) in buckets {
            out.push(ts, agg.combine(&values));
        }
        out
    }

    /// Network-wide mean of the latest point of `series` on each node.
    pub fn latest_mean(&self, series: &str) -> Option<f64> {
        let latest: Vec<f64> = self
            .stores
            .values()
            .filter_map(|db| db.series(series))
            .filter_map(|s| s.points().last().map(|p| p.value))
            .collect();
        if latest.is_empty() {
            None
        } else {
            Some(latest.iter().sum::<f64>() / latest.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fed_with_two_nodes() -> Federation {
        let mut f = Federation::new();
        for (node, base) in [(NodeId(0), 10.0), (NodeId(1), 30.0)] {
            let db = f.store_mut(node);
            for t in 0..10u64 {
                db.append("cpu", t * 100, base + t as f64);
            }
        }
        f
    }

    #[test]
    fn attach_and_holders() {
        let mut f = fed_with_two_nodes();
        f.store_mut(NodeId(2)).append("mem", 0, 1.0);
        assert_eq!(f.nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(f.holders("cpu"), vec![NodeId(0), NodeId(1)]);
        assert_eq!(f.holders("mem"), vec![NodeId(2)]);
        assert!(f.holders("disk").is_empty());
    }

    #[test]
    fn federated_mean() {
        let f = fed_with_two_nodes();
        // bucket [0,500): node0 mean = 12, node1 mean = 32 → mean 22
        let s = f.query("cpu", 0, 1000, 500, Aggregation::Mean);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0].value, 22.0);
        assert_eq!(s.points()[1].value, 27.0);
    }

    #[test]
    fn federated_sum_and_extremes() {
        let f = fed_with_two_nodes();
        let sum = f.query("cpu", 0, 500, 500, Aggregation::Sum);
        assert_eq!(sum.points()[0].value, 44.0);
        let max = f.query("cpu", 0, 500, 500, Aggregation::Max);
        assert_eq!(max.points()[0].value, 32.0);
        let min = f.query("cpu", 0, 500, 500, Aggregation::Min);
        assert_eq!(min.points()[0].value, 12.0);
    }

    #[test]
    fn query_window_respected() {
        let f = fed_with_two_nodes();
        let s = f.query("cpu", 300, 600, 100, Aggregation::Mean);
        assert_eq!(s.len(), 3); // buckets 300, 400, 500
        assert_eq!(s.points()[0].ts_ms, 300);
    }

    #[test]
    fn missing_series_yields_empty() {
        let f = fed_with_two_nodes();
        assert!(f.query("nope", 0, 1000, 100, Aggregation::Sum).is_empty());
    }

    #[test]
    fn partial_coverage_skips_empty_buckets() {
        let mut f = Federation::new();
        f.store_mut(NodeId(0)).append("x", 50, 5.0);
        f.store_mut(NodeId(1)).append("x", 950, 9.0);
        let s = f.query("x", 0, 1000, 100, Aggregation::Mean);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0].ts_ms, 0);
        assert_eq!(s.points()[1].ts_ms, 900);
    }

    #[test]
    fn latest_mean_across_nodes() {
        let f = fed_with_two_nodes();
        // latest points: 19 and 39
        assert_eq!(f.latest_mean("cpu"), Some(29.0));
        assert_eq!(f.latest_mean("nothing"), None);
    }
}
