//! User-defined modular in-device monitoring agents.
//!
//! The testbed deployed "10 user-defined monitoring agents … for monitoring
//! critical features" (§V-A, footnote 1: routing protocols, software and
//! network health, software functions and system resource utilization e.g.
//! CPU/Memory, Rx/Tx packet rates on interfaces, link states, system
//! temperature and hardware health, fault finder). Each agent watches DB
//! tables on the network OS and appends to its time series (§III-A).
//!
//! Agents carry a *resource cost model* — the CPU and memory the analytic
//! engine burns running them — which is what DUST offloads. The model is
//! calibrated against Fig. 1: ten agents under 20 % line-rate VxLAN traffic
//! average ≈ 100 % CPU (one core) and spike to ≈ 600 % on an 8-core switch.
//!
//! Beyond the ten periodic-STAT kinds, [`AgentKind::InbandTelemetry`] models
//! a P4 INT-style per-packet telemetry pipeline whose cost scales with how
//! many packets it actually samples: deterministic `1/N` or seeded
//! probabilistic `p` via [`IntSampling`] / [`IntSampler`].

use dust_topology::SplitMix64;

/// The ten user-defined agent kinds of the testbed (§V-A footnote 1), plus
/// the INT-style per-packet class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentKind {
    /// Routing-protocol health (BGP/OSPF adjacency churn).
    RoutingProtocolHealth,
    /// Network OS software health.
    SoftwareHealth,
    /// Data-plane network health.
    NetworkHealth,
    /// Software function call-rate monitoring.
    SoftwareFunctions,
    /// Device CPU utilization.
    CpuUtilization,
    /// Device memory utilization.
    MemoryUtilization,
    /// Rx/Tx packet rates on interfaces.
    RxTxPacketRates,
    /// Interface/link operational states.
    LinkStates,
    /// System temperature and hardware health.
    SystemTemperature,
    /// Fault finder (log scraping and anomaly matching).
    FaultFinder,
    /// In-band network telemetry: per-packet metadata extraction whose
    /// cost tracks line rate almost linearly. Not part of the calibrated
    /// ten-agent testbed deployment ([`AgentKind::ALL`]); deployed via
    /// [`MonitorAgent::int`] with a sampling knob that scales its
    /// traffic-proportional cost.
    InbandTelemetry,
}

impl AgentKind {
    /// The standard ten-agent deployment of the testbed.
    pub const ALL: [AgentKind; 10] = [
        AgentKind::RoutingProtocolHealth,
        AgentKind::SoftwareHealth,
        AgentKind::NetworkHealth,
        AgentKind::SoftwareFunctions,
        AgentKind::CpuUtilization,
        AgentKind::MemoryUtilization,
        AgentKind::RxTxPacketRates,
        AgentKind::LinkStates,
        AgentKind::SystemTemperature,
        AgentKind::FaultFinder,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AgentKind::RoutingProtocolHealth => "routing-protocol-health",
            AgentKind::SoftwareHealth => "software-health",
            AgentKind::NetworkHealth => "network-health",
            AgentKind::SoftwareFunctions => "software-functions",
            AgentKind::CpuUtilization => "cpu-utilization",
            AgentKind::MemoryUtilization => "memory-utilization",
            AgentKind::RxTxPacketRates => "rx-tx-packet-rates",
            AgentKind::LinkStates => "link-states",
            AgentKind::SystemTemperature => "system-temperature",
            AgentKind::FaultFinder => "fault-finder",
            AgentKind::InbandTelemetry => "inband-telemetry",
        }
    }

    /// Baseline CPU cost in percent-of-one-core at zero traffic.
    ///
    /// Traffic-insensitive agents (temperature, link states) are cheap;
    /// packet-rate and fault-finder agents dominate.
    pub fn cpu_base_percent(self) -> f64 {
        match self {
            AgentKind::RoutingProtocolHealth => 4.0,
            AgentKind::SoftwareHealth => 3.0,
            AgentKind::NetworkHealth => 4.0,
            AgentKind::SoftwareFunctions => 5.0,
            AgentKind::CpuUtilization => 2.0,
            AgentKind::MemoryUtilization => 2.0,
            AgentKind::RxTxPacketRates => 6.0,
            AgentKind::LinkStates => 1.5,
            AgentKind::SystemTemperature => 1.0,
            AgentKind::FaultFinder => 6.5,
            AgentKind::InbandTelemetry => 2.0,
        }
    }

    /// Traffic sensitivity: extra percent-of-one-core per unit of line-rate
    /// fraction. Calibrated so the ten agents at 20 % line rate average
    /// ≈ 100 % (Fig. 1): Σ base = 35, Σ slope · 0.2 ≈ 65 → Σ slope = 325.
    pub fn cpu_traffic_slope(self) -> f64 {
        match self {
            AgentKind::RoutingProtocolHealth => 15.0,
            AgentKind::SoftwareHealth => 5.0,
            AgentKind::NetworkHealth => 40.0,
            AgentKind::SoftwareFunctions => 20.0,
            AgentKind::CpuUtilization => 10.0,
            AgentKind::MemoryUtilization => 5.0,
            AgentKind::RxTxPacketRates => 120.0,
            AgentKind::LinkStates => 10.0,
            AgentKind::SystemTemperature => 0.0,
            AgentKind::FaultFinder => 100.0,
            // per-packet pipeline: at full sampling it dwarfs every STAT
            // agent; the sampling knob scales this slope down
            AgentKind::InbandTelemetry => 300.0,
        }
    }

    /// Steady memory footprint in MiB (the testbed retained ≈ 1.2 GiB for
    /// the full monitoring deployment, §V-A).
    pub fn mem_mib(self) -> f64 {
        match self {
            AgentKind::RoutingProtocolHealth => 110.0,
            AgentKind::SoftwareHealth => 90.0,
            AgentKind::NetworkHealth => 120.0,
            AgentKind::SoftwareFunctions => 100.0,
            AgentKind::CpuUtilization => 80.0,
            AgentKind::MemoryUtilization => 80.0,
            AgentKind::RxTxPacketRates => 200.0,
            AgentKind::LinkStates => 90.0,
            AgentKind::SystemTemperature => 60.0,
            AgentKind::FaultFinder => 270.0,
            AgentKind::InbandTelemetry => 160.0,
        }
    }

    /// Telemetry produced per STAT interval, in megabits, at the given
    /// traffic level (feeds `D_i` when the agent is offloaded).
    pub fn data_mb_per_interval(self, traffic_fraction: f64) -> f64 {
        // metadata-heavy agents emit more under load
        let base = self.mem_mib() / 20.0;
        base + self.cpu_traffic_slope() * traffic_fraction * 0.1
    }

    /// Instantaneous CPU cost at a traffic level, percent of one core.
    ///
    /// # Panics
    /// Panics if `traffic_fraction` is outside `[0, 1]`.
    pub fn cpu_percent(self, traffic_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&traffic_fraction),
            "traffic fraction must be in [0,1], got {traffic_fraction}"
        );
        self.cpu_base_percent() + self.cpu_traffic_slope() * traffic_fraction
    }
}

/// How an INT-style agent decides which packets to report on (the two
/// knobs of the P4 lightweight-INT design: deterministic `1/N` vs.
/// seeded probabilistic `p`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntSampling {
    /// Report on every `n`-th packet, starting with the first.
    Deterministic {
        /// Sampling period in packets; `1` reports on every packet.
        n: u32,
    },
    /// Report on each packet independently with probability `p`.
    Probabilistic {
        /// Per-packet report probability in `[0, 1]`.
        p: f64,
    },
}

impl IntSampling {
    /// Long-run fraction of packets reported on — what the cost model
    /// scales the agent's traffic-proportional work by.
    pub fn fraction(self) -> f64 {
        match self {
            IntSampling::Deterministic { n } => 1.0 / n.max(1) as f64,
            IntSampling::Probabilistic { p } => p.clamp(0.0, 1.0),
        }
    }

    /// A stateful per-packet sampler for this knob. `seed` feeds the
    /// probabilistic draw and is ignored by the deterministic mode.
    pub fn sampler(self, seed: u64) -> IntSampler {
        IntSampler { mode: self, counter: 0, rng: SplitMix64::new(seed) }
    }
}

/// Stateful per-packet INT sampler: deterministic every-`n`-th counting
/// or a seeded Bernoulli draw per packet.
///
/// `Probabilistic { p: 1.0 }` makes the same decision for every packet as
/// `Deterministic { n: 1 }` — both report on all of them — so the two
/// parameterizations agree exactly at the boundary.
#[derive(Debug, Clone)]
pub struct IntSampler {
    mode: IntSampling,
    counter: u64,
    rng: SplitMix64,
}

impl IntSampler {
    /// Decide whether the next packet is reported on, advancing state.
    pub fn sample_packet(&mut self) -> bool {
        match self.mode {
            IntSampling::Deterministic { n } => {
                let hit = self.counter.is_multiple_of(u64::from(n.max(1)));
                self.counter += 1;
                hit
            }
            IntSampling::Probabilistic { p } => self.rng.gen_bool(p),
        }
    }

    /// Number of reports a burst of `pkts` packets produces, advancing
    /// state as if each packet had been offered to [`Self::sample_packet`].
    /// Deterministic mode on a fresh sampler yields exactly `ceil(pkts/n)`.
    pub fn reports_for(&mut self, pkts: u64) -> u64 {
        (0..pkts).filter(|_| self.sample_packet()).count() as u64
    }
}

/// A deployed monitor agent: a kind, its sampling cadence, and — for
/// INT-style agents — a per-packet sampling knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorAgent {
    /// What it monitors.
    pub kind: AgentKind,
    /// How often it samples its DB tables, ms.
    pub sample_interval_ms: u64,
    /// Per-packet sampling knob; `None` for periodic-STAT agents. Scales
    /// the traffic-proportional part of the cost model by its fraction.
    pub sampling: Option<IntSampling>,
}

impl MonitorAgent {
    /// An agent with the default 1-second cadence and no packet sampling.
    pub fn new(kind: AgentKind) -> Self {
        MonitorAgent { kind, sample_interval_ms: 1000, sampling: None }
    }

    /// An INT-style per-packet agent with the given sampling knob and a
    /// fast 100 ms export cadence.
    pub fn int(sampling: IntSampling) -> Self {
        MonitorAgent {
            kind: AgentKind::InbandTelemetry,
            sample_interval_ms: 100,
            sampling: Some(sampling),
        }
    }

    /// The full ten-agent testbed deployment.
    pub fn standard_deployment() -> Vec<MonitorAgent> {
        AgentKind::ALL.iter().copied().map(MonitorAgent::new).collect()
    }

    /// Fraction of traffic-proportional work this deployment actually
    /// performs (`1.0` for periodic agents, the sampling fraction for INT).
    pub fn cost_fraction(&self) -> f64 {
        self.sampling.map_or(1.0, IntSampling::fraction)
    }

    /// Effective CPU cost at a traffic level, percent of one core: the
    /// kind's cost with the traffic-proportional part scaled by the
    /// sampling fraction. Identical to [`AgentKind::cpu_percent`] when no
    /// sampling knob is set.
    ///
    /// # Panics
    /// Panics if `traffic_fraction` is outside `[0, 1]`.
    pub fn cpu_percent(&self, traffic_fraction: f64) -> f64 {
        match self.sampling {
            None => self.kind.cpu_percent(traffic_fraction),
            Some(s) => {
                assert!(
                    (0.0..=1.0).contains(&traffic_fraction),
                    "traffic fraction must be in [0,1], got {traffic_fraction}"
                );
                self.kind.cpu_base_percent()
                    + self.kind.cpu_traffic_slope() * traffic_fraction * s.fraction()
            }
        }
    }

    /// Effective telemetry volume per STAT interval, Mb, with the
    /// traffic-proportional part scaled by the sampling fraction.
    pub fn data_mb_per_interval(&self, traffic_fraction: f64) -> f64 {
        match self.sampling {
            None => self.kind.data_mb_per_interval(traffic_fraction),
            Some(s) => {
                self.kind.mem_mib() / 20.0
                    + self.kind.cpu_traffic_slope() * traffic_fraction * 0.1 * s.fraction()
            }
        }
    }
}

/// Aggregate cost of a set of agents at a traffic level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentLoad {
    /// Total CPU, percent of one core (may exceed 100 on multi-core).
    pub cpu_percent: f64,
    /// Total resident memory, MiB.
    pub mem_mib: f64,
    /// Telemetry volume per interval, Mb.
    pub data_mb: f64,
}

/// Sum the cost model over `agents` at `traffic_fraction` of line rate.
pub fn aggregate_load(agents: &[MonitorAgent], traffic_fraction: f64) -> AgentLoad {
    let mut cpu = 0.0;
    let mut mem = 0.0;
    let mut data = 0.0;
    for a in agents {
        cpu += a.cpu_percent(traffic_fraction);
        mem += a.kind.mem_mib();
        data += a.data_mb_per_interval(traffic_fraction);
    }
    AgentLoad { cpu_percent: cpu, mem_mib: mem, data_mb: data }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_agents() {
        let mut names: Vec<_> = AgentKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn fig1_calibration_average_near_100_percent() {
        // ten agents at 20 % line rate must average ≈ 100 % of one core
        let agents = MonitorAgent::standard_deployment();
        let load = aggregate_load(&agents, 0.2);
        assert!(
            (load.cpu_percent - 100.0).abs() < 5.0,
            "Fig. 1 calibration broken: {} %",
            load.cpu_percent
        );
    }

    #[test]
    fn idle_cost_is_much_lower() {
        let agents = MonitorAgent::standard_deployment();
        let idle = aggregate_load(&agents, 0.0);
        let busy = aggregate_load(&agents, 0.2);
        assert!(idle.cpu_percent < busy.cpu_percent / 2.0);
        assert!((idle.cpu_percent - 35.0).abs() < 1.0);
    }

    #[test]
    fn memory_near_testbed_1_2_gib() {
        let load = aggregate_load(&MonitorAgent::standard_deployment(), 0.2);
        let gib = load.mem_mib / 1024.0;
        assert!((gib - 1.17).abs() < 0.15, "testbed retained ~1.2 GiB, got {gib}");
    }

    #[test]
    fn cpu_monotone_in_traffic() {
        for k in AgentKind::ALL {
            assert!(k.cpu_percent(0.8) >= k.cpu_percent(0.1), "{k:?}");
        }
    }

    #[test]
    fn temperature_agent_is_traffic_insensitive() {
        let k = AgentKind::SystemTemperature;
        assert_eq!(k.cpu_percent(0.0), k.cpu_percent(1.0));
    }

    #[test]
    #[should_panic(expected = "traffic fraction")]
    fn out_of_range_traffic_rejected() {
        AgentKind::FaultFinder.cpu_percent(1.5);
    }

    #[test]
    fn data_volume_positive_and_loaded() {
        for k in AgentKind::ALL {
            assert!(k.data_mb_per_interval(0.0) > 0.0);
            assert!(k.data_mb_per_interval(0.5) >= k.data_mb_per_interval(0.0));
        }
    }

    #[test]
    fn int_kind_stays_out_of_the_calibrated_deployment() {
        assert!(!AgentKind::ALL.contains(&AgentKind::InbandTelemetry));
        assert_eq!(AgentKind::InbandTelemetry.name(), "inband-telemetry");
    }

    #[test]
    fn sampling_fraction_scales_int_cost() {
        let full = MonitorAgent::int(IntSampling::Deterministic { n: 1 });
        let eighth = MonitorAgent::int(IntSampling::Deterministic { n: 8 });
        let half = MonitorAgent::int(IntSampling::Probabilistic { p: 0.5 });
        let t = 0.6;
        let slope_part = |a: &MonitorAgent| a.cpu_percent(t) - a.kind.cpu_base_percent();
        assert!((slope_part(&eighth) - slope_part(&full) / 8.0).abs() < 1e-9);
        assert!((slope_part(&half) - slope_part(&full) / 2.0).abs() < 1e-9);
        assert!(eighth.data_mb_per_interval(t) < full.data_mb_per_interval(t));
    }

    #[test]
    fn unsampled_agent_cost_matches_kind_cost_exactly() {
        for k in AgentKind::ALL {
            let a = MonitorAgent::new(k);
            for t in [0.0, 0.2, 0.77, 1.0] {
                assert_eq!(a.cpu_percent(t), k.cpu_percent(t));
                assert_eq!(a.data_mb_per_interval(t), k.data_mb_per_interval(t));
            }
        }
    }

    #[test]
    fn deterministic_sampler_hits_every_nth_from_the_first() {
        let mut s = IntSampling::Deterministic { n: 4 }.sampler(0);
        let hits: Vec<bool> = (0..9).map(|_| s.sample_packet()).collect();
        assert_eq!(hits, [true, false, false, false, true, false, false, false, true]);
    }

    #[test]
    fn full_probability_equals_every_packet() {
        let mut every = IntSampling::Deterministic { n: 1 }.sampler(9);
        let mut sure = IntSampling::Probabilistic { p: 1.0 }.sampler(9);
        for _ in 0..1000 {
            assert_eq!(every.sample_packet(), sure.sample_packet());
        }
    }
}
