//! In-memory Time Series Database (TSDB).
//!
//! "The Time Series Database efficiently stores the metrics and rules
//! established by these Monitor Agents" (§III-A). This is a deliberately
//! small, deterministic store: append-only per-series point lists with
//! range queries, bucketed downsampling, and retention trimming — the
//! operations the Monitor Agents and the Time-Series Federation layer need.

use std::collections::BTreeMap;

/// One timestamped measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Milliseconds since simulation epoch.
    pub ts_ms: u64,
    /// Measured value.
    pub value: f64,
}

/// An append-only series of points ordered by timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    points: Vec<Point>,
}

impl Series {
    /// Append a point.
    ///
    /// # Panics
    /// Panics if `ts_ms` is older than the newest stored point (series are
    /// strictly append-ordered).
    pub fn push(&mut self, ts_ms: u64, value: f64) {
        if let Some(last) = self.points.last() {
            assert!(ts_ms >= last.ts_ms, "out-of-order append: {ts_ms} after {}", last.ts_ms);
        }
        self.points.push(Point { ts_ms, value });
    }

    /// All points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points with `start <= ts < end`.
    pub fn range(&self, start_ms: u64, end_ms: u64) -> &[Point] {
        let lo = self.points.partition_point(|p| p.ts_ms < start_ms);
        let hi = self.points.partition_point(|p| p.ts_ms < end_ms);
        &self.points[lo..hi]
    }

    /// Arithmetic mean over a range, `None` if the range is empty.
    pub fn mean(&self, start_ms: u64, end_ms: u64) -> Option<f64> {
        let pts = self.range(start_ms, end_ms);
        if pts.is_empty() {
            None
        } else {
            Some(pts.iter().map(|p| p.value).sum::<f64>() / pts.len() as f64)
        }
    }

    /// Maximum over a range, `None` if the range is empty.
    pub fn max(&self, start_ms: u64, end_ms: u64) -> Option<f64> {
        self.range(start_ms, end_ms)
            .iter()
            .map(|p| p.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Downsample into buckets of `bucket_ms`, averaging points per bucket.
    /// Buckets are aligned to `t = 0`; empty buckets are skipped.
    pub fn downsample(&self, bucket_ms: u64) -> Series {
        assert!(bucket_ms > 0, "bucket width must be positive");
        let mut out = Series::default();
        let mut bucket_start: Option<u64> = None;
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in &self.points {
            let b = p.ts_ms / bucket_ms * bucket_ms;
            match bucket_start {
                Some(cur) if cur == b => {
                    sum += p.value;
                    n += 1;
                }
                Some(cur) => {
                    out.push(cur, sum / n as f64);
                    bucket_start = Some(b);
                    sum = p.value;
                    n = 1;
                }
                None => {
                    bucket_start = Some(b);
                    sum = p.value;
                    n = 1;
                }
            }
        }
        if let (Some(cur), true) = (bucket_start, n > 0) {
            out.push(cur, sum / n as f64);
        }
        out
    }

    /// Drop points older than `horizon_ms` before `now_ms` (retention).
    /// Returns the number of points dropped.
    pub fn trim(&mut self, now_ms: u64, horizon_ms: u64) -> usize {
        let cutoff = now_ms.saturating_sub(horizon_ms);
        let keep_from = self.points.partition_point(|p| p.ts_ms < cutoff);
        self.points.drain(..keep_from);
        keep_from
    }
}

/// A node-local TSDB: named series with shared retention policy.
#[derive(Debug, Clone, Default)]
pub struct Tsdb {
    series: BTreeMap<String, Series>,
}

impl Tsdb {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append to (creating if needed) a named series. The existing-series
    /// path allocates nothing — the simulator appends here per node per
    /// sample, so the name is only materialized on first use.
    pub fn append(&mut self, name: &str, ts_ms: u64, value: f64) {
        if let Some(s) = self.series.get_mut(name) {
            s.push(ts_ms, value);
        } else {
            self.series.entry(name.to_string()).or_default().push(ts_ms, value);
        }
    }

    /// Look up a series.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Names of all stored series, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total stored points across series.
    pub fn point_count(&self) -> usize {
        self.series.values().map(Series::len).sum()
    }

    /// Apply retention to every series; returns total points dropped.
    pub fn trim_all(&mut self, now_ms: u64, horizon_ms: u64) -> usize {
        self.series.values_mut().map(|s| s.trim(now_ms, horizon_ms)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> Series {
        let mut s = Series::default();
        for i in 0..10u64 {
            s.push(i * 100, i as f64);
        }
        s
    }

    #[test]
    fn append_and_range() {
        let s = filled();
        assert_eq!(s.len(), 10);
        let r = s.range(200, 500);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].value, 2.0);
        assert_eq!(r[2].value, 4.0);
    }

    #[test]
    fn range_boundaries_half_open() {
        let s = filled();
        assert_eq!(s.range(0, 100).len(), 1);
        assert_eq!(s.range(0, 101).len(), 2);
        assert_eq!(s.range(900, 10_000).len(), 1);
        assert!(s.range(5_000, 9_000).is_empty());
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_rejected() {
        let mut s = filled();
        s.push(50, 1.0);
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut s = Series::default();
        s.push(10, 1.0);
        s.push(10, 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn mean_and_max() {
        let s = filled();
        assert_eq!(s.mean(0, 1000), Some(4.5));
        assert_eq!(s.max(0, 1000), Some(9.0));
        assert_eq!(s.mean(5_000, 6_000), None);
    }

    #[test]
    fn downsample_averages_buckets() {
        let s = filled(); // points at 0,100,...,900
        let d = s.downsample(500); // buckets [0,500) and [500,1000)
        assert_eq!(d.len(), 2);
        assert_eq!(d.points()[0], Point { ts_ms: 0, value: 2.0 }); // mean 0..4
        assert_eq!(d.points()[1], Point { ts_ms: 500, value: 7.0 }); // mean 5..9
    }

    #[test]
    fn trim_retention() {
        let mut s = filled();
        let dropped = s.trim(900, 300); // cutoff at 600
        assert_eq!(dropped, 6);
        assert_eq!(s.points()[0].ts_ms, 600);
    }

    #[test]
    fn tsdb_named_series() {
        let mut db = Tsdb::new();
        db.append("cpu", 0, 10.0);
        db.append("cpu", 100, 12.0);
        db.append("mem", 0, 60.0);
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.point_count(), 3);
        assert_eq!(db.series_names(), vec!["cpu", "mem"]);
        assert_eq!(db.series("cpu").unwrap().len(), 2);
        assert!(db.series("disk").is_none());
    }

    #[test]
    fn tsdb_trim_all() {
        let mut db = Tsdb::new();
        for t in 0..10u64 {
            db.append("a", t * 10, 1.0);
            db.append("b", t * 10, 2.0);
        }
        let dropped = db.trim_all(90, 30); // cutoff 60 → drops t<60: 6 each
        assert_eq!(dropped, 12);
        assert_eq!(db.point_count(), 8);
    }

    #[test]
    fn downsample_skips_gaps() {
        let mut s = Series::default();
        s.push(0, 1.0);
        s.push(2_000, 3.0); // bucket [2000,2500)
        let d = s.downsample(500);
        assert_eq!(d.len(), 2);
        assert_eq!(d.points()[1].ts_ms, 2_000);
    }
}
