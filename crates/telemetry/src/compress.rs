//! Gorilla-style time-series compression.
//!
//! The DUST architecture "includes in-situ data compression and packet
//! parsing capabilities in SmartNICs, which aid in reducing data transfers
//! and improving end-to-end performance" (§III-A). This module implements
//! the classic Facebook Gorilla scheme: delta-of-delta timestamps and
//! XOR-encoded float values, both bit-packed.

use crate::tsdb::Series;

/// Bit-level writer over a growable byte buffer (MSB-first).
#[derive(Debug, Default)]
struct BitWriter {
    buf: Vec<u8>,
    /// Bits used in the final byte (0..8).
    used: u8,
}

impl BitWriter {
    fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.push(0);
            self.used = 8;
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (self.used - 1);
        }
        self.used -= 1;
    }

    fn write_bits(&mut self, value: u64, count: u8) {
        debug_assert!(count <= 64);
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bit-level reader mirroring [`BitWriter`].
#[derive(Debug)]
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Bits remaining in the current byte (8..=1).
    left: u8,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0, left: 8 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let bit = (self.buf[self.pos] >> (self.left - 1)) & 1 == 1;
        self.left -= 1;
        if self.left == 0 {
            self.pos += 1;
            self.left = 8;
        }
        Some(bit)
    }

    fn read_bits(&mut self, count: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }
}

/// A compressed block of one series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedBlock {
    /// Number of points encoded.
    pub count: usize,
    /// Bit-packed payload.
    pub bytes: Vec<u8>,
}

impl CompressedBlock {
    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Compression ratio vs. raw `(u64, f64)` points (16 bytes each).
    /// Greater than 1 means the block is smaller than raw.
    pub fn ratio(&self) -> f64 {
        if self.bytes.is_empty() {
            return 1.0;
        }
        (self.count * 16) as f64 / self.bytes.len() as f64
    }
}

/// Compress a series with Gorilla delta-of-delta + XOR encoding.
pub fn compress(series: &Series) -> CompressedBlock {
    let pts = series.points();
    let mut w = BitWriter::default();
    if pts.is_empty() {
        return CompressedBlock { count: 0, bytes: w.finish() };
    }
    // Header: first timestamp and value, raw.
    w.write_bits(pts[0].ts_ms, 64);
    w.write_bits(pts[0].value.to_bits(), 64);
    if pts.len() == 1 {
        return CompressedBlock { count: 1, bytes: w.finish() };
    }
    // Second point: delta (as zigzag 64-bit), value XOR-encoded below.
    let first_delta = pts[1].ts_ms as i64 - pts[0].ts_ms as i64;
    w.write_bits(zigzag(first_delta), 64);

    let mut prev_ts = pts[1].ts_ms;
    let mut prev_delta = first_delta;
    let mut prev_bits = pts[0].value.to_bits();
    let mut prev_lead: u8 = 255; // sentinel: no previous window
    let mut prev_len: u8 = 0;

    // encode value of point 1 first
    encode_value(&mut w, pts[1].value.to_bits(), &mut prev_bits, &mut prev_lead, &mut prev_len);

    for p in &pts[2..] {
        // ---- timestamp: delta-of-delta ------------------------------------
        let delta = p.ts_ms as i64 - prev_ts as i64;
        let dod = delta - prev_delta;
        prev_ts = p.ts_ms;
        prev_delta = delta;
        match dod {
            0 => w.write_bit(false),
            -63..=64 => {
                w.write_bits(0b10, 2);
                w.write_bits((dod + 63) as u64, 7);
            }
            -255..=256 => {
                w.write_bits(0b110, 3);
                w.write_bits((dod + 255) as u64, 9);
            }
            -2047..=2048 => {
                w.write_bits(0b1110, 4);
                w.write_bits((dod + 2047) as u64, 12);
            }
            _ => {
                w.write_bits(0b1111, 4);
                w.write_bits(zigzag(dod), 64);
            }
        }
        // ---- value: XOR ----------------------------------------------------
        encode_value(&mut w, p.value.to_bits(), &mut prev_bits, &mut prev_lead, &mut prev_len);
    }
    CompressedBlock { count: pts.len(), bytes: w.finish() }
}

fn encode_value(
    w: &mut BitWriter,
    bits: u64,
    prev: &mut u64,
    prev_lead: &mut u8,
    prev_len: &mut u8,
) {
    let xor = bits ^ *prev;
    *prev = bits;
    if xor == 0 {
        w.write_bit(false);
        return;
    }
    w.write_bit(true);
    let lead = (xor.leading_zeros() as u8).min(31); // 5 bits reserve
    let trail = xor.trailing_zeros() as u8;
    let len = 64 - lead - trail;
    if *prev_lead != 255 && lead >= *prev_lead && (64 - *prev_lead - *prev_len) <= trail {
        // reuse the previous window
        w.write_bit(false);
        w.write_bits(xor >> (64 - *prev_lead - *prev_len), *prev_len);
    } else {
        w.write_bit(true);
        w.write_bits(u64::from(lead), 5);
        // len in 1..=64; store len-1 in 6 bits
        w.write_bits(u64::from(len - 1), 6);
        w.write_bits(xor >> trail, len);
        *prev_lead = lead;
        *prev_len = len;
    }
}

/// Decompress a block produced by [`compress`].
///
/// Returns `None` on a truncated or corrupt payload.
pub fn decompress(block: &CompressedBlock) -> Option<Series> {
    let mut out = Series::default();
    if block.count == 0 {
        return Some(out);
    }
    let mut r = BitReader::new(&block.bytes);
    let ts0 = r.read_bits(64)?;
    let v0 = f64::from_bits(r.read_bits(64)?);
    out.push(ts0, v0);
    if block.count == 1 {
        return Some(out);
    }
    let first_delta = unzigzag(r.read_bits(64)?);
    let mut prev_ts = (ts0 as i64 + first_delta) as u64;
    let mut prev_delta = first_delta;
    let mut prev_bits = v0.to_bits();
    let mut prev_lead: u8 = 255;
    let mut prev_len: u8 = 0;

    let v1 = decode_value(&mut r, &mut prev_bits, &mut prev_lead, &mut prev_len)?;
    out.push(prev_ts, v1);

    for _ in 2..block.count {
        // ---- timestamp -----------------------------------------------------
        let dod = if !r.read_bit()? {
            0
        } else if !r.read_bit()? {
            r.read_bits(7)? as i64 - 63
        } else if !r.read_bit()? {
            r.read_bits(9)? as i64 - 255
        } else if !r.read_bit()? {
            r.read_bits(12)? as i64 - 2047
        } else {
            unzigzag(r.read_bits(64)?)
        };
        let delta = prev_delta + dod;
        let ts = (prev_ts as i64 + delta) as u64;
        prev_ts = ts;
        prev_delta = delta;
        let v = decode_value(&mut r, &mut prev_bits, &mut prev_lead, &mut prev_len)?;
        out.push(ts, v);
    }
    Some(out)
}

fn decode_value(
    r: &mut BitReader<'_>,
    prev: &mut u64,
    prev_lead: &mut u8,
    prev_len: &mut u8,
) -> Option<f64> {
    if !r.read_bit()? {
        return Some(f64::from_bits(*prev));
    }
    let xor = if !r.read_bit()? {
        // previous window
        let bits = r.read_bits(*prev_len)?;
        bits << (64 - *prev_lead - *prev_len)
    } else {
        let lead = r.read_bits(5)? as u8;
        let len = r.read_bits(6)? as u8 + 1;
        let bits = r.read_bits(len)?;
        *prev_lead = lead;
        *prev_len = len;
        bits << (64 - lead - len)
    };
    *prev ^= xor;
    Some(f64::from_bits(*prev))
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Convenience: compress and report the achieved ratio.
pub fn compression_ratio(series: &Series) -> f64 {
    compress(series).ratio()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_of(pts: &[(u64, f64)]) -> Series {
        let mut s = Series::default();
        for &(t, v) in pts {
            s.push(t, v);
        }
        s
    }

    fn roundtrip(pts: &[(u64, f64)]) {
        let s = series_of(pts);
        let block = compress(&s);
        let back = decompress(&block).expect("decompress");
        assert_eq!(back.points(), s.points(), "roundtrip mismatch");
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[(42, 3.125)]);
    }

    #[test]
    fn regular_cadence_constant_value() {
        let pts: Vec<_> = (0..100u64).map(|i| (i * 1000, 55.0)).collect();
        roundtrip(&pts);
        // steady series should compress extremely well (dod = 0, xor = 0)
        let block = compress(&series_of(&pts));
        assert!(block.ratio() > 30.0, "ratio {}", block.ratio());
    }

    #[test]
    fn regular_cadence_slow_drift() {
        let pts: Vec<_> = (0..200u64).map(|i| (i * 500, 40.0 + (i as f64) * 0.25)).collect();
        roundtrip(&pts);
        let block = compress(&series_of(&pts));
        assert!(block.ratio() > 2.0, "ratio {}", block.ratio());
    }

    #[test]
    fn jittered_timestamps() {
        let pts: Vec<_> =
            (0..50u64).map(|i| (i * 1000 + (i % 7) * 13, (i as f64).sin() * 100.0)).collect();
        roundtrip(&pts);
    }

    #[test]
    fn large_timestamp_jumps() {
        roundtrip(&[(0, 1.0), (10, 2.0), (1_000_000_000, 3.0), (1_000_000_010, 4.0)]);
    }

    #[test]
    fn special_float_values() {
        roundtrip(&[
            (0, 0.0),
            (1, -0.0),
            (2, f64::MAX),
            (3, f64::MIN_POSITIVE),
            (4, f64::INFINITY),
            (5, f64::NEG_INFINITY),
        ]);
    }

    #[test]
    fn equal_timestamps_survive() {
        roundtrip(&[(5, 1.0), (5, 2.0), (5, 3.0)]);
    }

    #[test]
    fn alternating_values() {
        let pts: Vec<_> = (0..64u64).map(|i| (i, if i % 2 == 0 { 1.5 } else { -2.5 })).collect();
        roundtrip(&pts);
    }

    #[test]
    fn truncated_block_fails_gracefully() {
        let s = series_of(&[(0, 1.0), (100, 2.0), (200, 3.0)]);
        let mut block = compress(&s);
        block.bytes.truncate(4);
        assert!(decompress(&block).is_none());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN + 1] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
