//! Threshold rules and automated triggers.
//!
//! The TSDB "stores the metrics and rules established by these Monitor
//! Agents" and the Network Monitor Service "can initiate network
//! monitoring either based on user input or through automated triggers"
//! (§III-A). This module provides those triggers: sustained-threshold
//! rules with hysteresis and cooldown, evaluated against a [`Tsdb`].
//! The simulator and Manager use them as an alternative Busy-node
//! detection path (e.g. "CPU above 80 % for 30 s").

use crate::tsdb::Tsdb;

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Fire while the value is strictly above the threshold.
    Above,
    /// Fire while the value is strictly below the threshold.
    Below,
}

impl Comparison {
    fn matches(self, value: f64, threshold: f64) -> bool {
        match self {
            Comparison::Above => value > threshold,
            Comparison::Below => value < threshold,
        }
    }
}

/// A sustained-threshold rule over one series.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (alert identifier).
    pub name: String,
    /// Series the rule watches.
    pub series: String,
    /// Crossing direction.
    pub comparison: Comparison,
    /// Threshold value.
    pub threshold: f64,
    /// The condition must hold continuously for this long before firing
    /// (0 = fire on the first matching sample).
    pub sustain_ms: u64,
    /// Minimum quiet time between consecutive alerts of this rule.
    pub cooldown_ms: u64,
}

impl Rule {
    /// A rule firing as soon as one sample crosses.
    pub fn instant(name: &str, series: &str, comparison: Comparison, threshold: f64) -> Self {
        Rule {
            name: name.to_string(),
            series: series.to_string(),
            comparison,
            threshold,
            sustain_ms: 0,
            cooldown_ms: 0,
        }
    }
}

/// A fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the rule that fired.
    pub rule: String,
    /// Time the alert fired, ms.
    pub at_ms: u64,
    /// The sample value that completed the sustained condition.
    pub value: f64,
}

/// Per-rule evaluation state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    /// Start of the current continuous violation, if any.
    violating_since: Option<u64>,
    /// Last time this rule fired.
    last_fired: Option<u64>,
    /// Timestamp up to which samples were already consumed.
    cursor_ms: u64,
}

/// Evaluates a set of rules incrementally against a node-local TSDB.
#[derive(Debug, Clone, Default)]
pub struct RuleEngine {
    rules: Vec<Rule>,
    states: Vec<RuleState>,
}

impl RuleEngine {
    /// An engine with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
        self.states.push(RuleState::default());
    }

    /// Registered rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluate all rules over samples in `(cursor, now]`, firing alerts.
    /// Evaluation is incremental: each call consumes only new samples, so
    /// calling repeatedly with a growing TSDB never re-fires on old data
    /// (except through legitimate new violations after cooldown).
    pub fn evaluate(&mut self, db: &Tsdb, now_ms: u64) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for (rule, st) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(series) = db.series(&rule.series) else {
                continue;
            };
            // consume samples after the cursor up to and including now
            for p in series.range(st.cursor_ms, now_ms.saturating_add(1)) {
                if rule.comparison.matches(p.value, rule.threshold) {
                    let since = *st.violating_since.get_or_insert(p.ts_ms);
                    let sustained = p.ts_ms.saturating_sub(since) >= rule.sustain_ms;
                    let cooled =
                        st.last_fired.is_none_or(|t| p.ts_ms.saturating_sub(t) >= rule.cooldown_ms);
                    if sustained && cooled {
                        st.last_fired = Some(p.ts_ms);
                        alerts.push(Alert {
                            rule: rule.name.clone(),
                            at_ms: p.ts_ms,
                            value: p.value,
                        });
                    }
                } else {
                    st.violating_since = None;
                }
            }
            st.cursor_ms = now_ms.saturating_add(1);
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(series: &str, pts: &[(u64, f64)]) -> Tsdb {
        let mut db = Tsdb::new();
        for &(t, v) in pts {
            db.append(series, t, v);
        }
        db
    }

    fn busy_rule(sustain_ms: u64, cooldown_ms: u64) -> Rule {
        Rule {
            name: "busy".into(),
            series: "cpu".into(),
            comparison: Comparison::Above,
            threshold: 80.0,
            sustain_ms,
            cooldown_ms,
        }
    }

    #[test]
    fn instant_rule_fires_on_first_crossing() {
        let db = db_with("cpu", &[(0, 50.0), (1000, 85.0), (2000, 60.0)]);
        let mut e = RuleEngine::new();
        e.add_rule(Rule::instant("busy", "cpu", Comparison::Above, 80.0));
        let alerts = e.evaluate(&db, 3000);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].at_ms, 1000);
        assert_eq!(alerts[0].value, 85.0);
    }

    #[test]
    fn sustain_requires_continuous_violation() {
        // crosses at 1000 but dips at 2000: the 3-second sustain never
        // completes until the second streak (4000..7000)
        let db = db_with(
            "cpu",
            &[(1000, 90.0), (2000, 50.0), (4000, 90.0), (5000, 91.0), (6000, 92.0), (7000, 93.0)],
        );
        let mut e = RuleEngine::new();
        e.add_rule(busy_rule(3000, 0));
        let alerts = e.evaluate(&db, 10_000);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].at_ms, 7000);
    }

    #[test]
    fn cooldown_limits_alert_rate() {
        let pts: Vec<(u64, f64)> = (0..10).map(|i| (i * 1000, 95.0)).collect();
        let db = db_with("cpu", &pts);
        let mut e = RuleEngine::new();
        e.add_rule(busy_rule(0, 4000));
        let alerts = e.evaluate(&db, 20_000);
        // fires at 0, 4000, 8000
        let times: Vec<u64> = alerts.iter().map(|a| a.at_ms).collect();
        assert_eq!(times, vec![0, 4000, 8000]);
    }

    #[test]
    fn incremental_evaluation_does_not_refire() {
        let mut db = db_with("cpu", &[(0, 95.0)]);
        let mut e = RuleEngine::new();
        e.add_rule(busy_rule(0, 0));
        assert_eq!(e.evaluate(&db, 1000).len(), 1);
        // same data, later evaluation: nothing new
        assert_eq!(e.evaluate(&db, 2000).len(), 0);
        // a new violating sample fires again (no cooldown)
        db.append("cpu", 3000, 96.0);
        assert_eq!(e.evaluate(&db, 3000).len(), 1);
    }

    #[test]
    fn below_rules_work() {
        let db = db_with("free-mem", &[(0, 50.0), (1000, 5.0)]);
        let mut e = RuleEngine::new();
        e.add_rule(Rule::instant("oom-risk", "free-mem", Comparison::Below, 10.0));
        let alerts = e.evaluate(&db, 2000);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "oom-risk");
    }

    #[test]
    fn missing_series_is_silent() {
        let db = Tsdb::new();
        let mut e = RuleEngine::new();
        e.add_rule(busy_rule(0, 0));
        assert!(e.evaluate(&db, 1000).is_empty());
    }

    #[test]
    fn multiple_rules_independent() {
        let mut db = db_with("cpu", &[(0, 95.0)]);
        db.append("mem", 0, 5.0);
        let mut e = RuleEngine::new();
        e.add_rule(busy_rule(0, 0));
        e.add_rule(Rule::instant("low-mem", "mem", Comparison::Below, 10.0));
        let alerts = e.evaluate(&db, 1000);
        assert_eq!(alerts.len(), 2);
        let names: Vec<&str> = alerts.iter().map(|a| a.rule.as_str()).collect();
        assert!(names.contains(&"busy") && names.contains(&"low-mem"));
    }

    #[test]
    fn boundary_value_does_not_fire_above() {
        let db = db_with("cpu", &[(0, 80.0)]);
        let mut e = RuleEngine::new();
        e.add_rule(busy_rule(0, 0));
        assert!(e.evaluate(&db, 100).is_empty(), "Above is strict");
    }
}
